"""Signal/media workloads (paper Table 1: DCT8, FWHT, DWTH, SCnv, Bsort, AES).

The transforms (DCT, Walsh-Hadamard, Haar) are coherent register
kernels; simple convolution is coherent except at its clamped edges;
bitonic sort's compare-and-swap network predicates half the lanes each
pass in alternating stride patterns (a showcase for SCC); the AES round
gathers S-box entries per lane — coherent control but memory divergent.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def dct8(blocks: int = 192, simd_width: int = 16, seed: int = 70) -> Workload:
    """DCT8: 8-point DCT-II per work-item, fully unrolled (coherent)."""
    b = KernelBuilder("dct8", simd_width)
    gid = b.global_id()
    s_in, s_out = b.surface_arg("inp"), b.surface_arg("out")
    base = b.vreg(DType.I32)
    b.shl(base, gid, 5)  # block byte offset: 8 floats = 32 bytes
    addr = b.vreg(DType.I32)
    xs = [b.vreg(DType.F32) for _ in range(8)]
    for i, x in enumerate(xs):
        b.add(addr, base, i * 4)
        b.load(x, addr, s_in)
    out = b.vreg(DType.F32)
    for k in range(8):
        scale = math.sqrt(1.0 / 8) if k == 0 else math.sqrt(2.0 / 8)
        b.mov(out, 0.0)
        for n_idx, x in enumerate(xs):
            coeff = scale * math.cos(math.pi / 8 * (n_idx + 0.5) * k)
            b.mad(out, x, coeff, out)
        b.add(addr, base, k * 4)
        b.store(out, addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    inp = rng.uniform(-1, 1, (blocks, 8)).astype(np.float32)
    out = np.zeros((blocks, 8), dtype=np.float32)

    def check(buffers):
        n_idx = np.arange(8)
        basis = np.cos(np.pi / 8 * (n_idx[None, :] + 0.5) * n_idx[:, None])
        basis *= np.where(n_idx[:, None] == 0, math.sqrt(1 / 8), math.sqrt(2 / 8))
        expected = inp @ basis.T
        np.testing.assert_allclose(
            buffers["out"].reshape(blocks, 8), expected, rtol=1e-3, atol=1e-4)

    return Workload(
        name="dct8",
        program=program,
        buffers={"inp": inp.reshape(-1), "out": out.reshape(-1)},
        steps=[LaunchStep(global_size=blocks)],
        check=check,
        category="coherent",
        description="8-point DCT-II per work-item",
    )


def fwht(groups: int = 256, simd_width: int = 16, seed: int = 71) -> Workload:
    """FWHT: 8-point fast Walsh-Hadamard transform per work-item."""
    b = KernelBuilder("fwht", simd_width)
    gid = b.global_id()
    s_in, s_out = b.surface_arg("inp"), b.surface_arg("out")
    base = b.vreg(DType.I32)
    b.shl(base, gid, 5)
    addr = b.vreg(DType.I32)
    xs = [b.vreg(DType.F32) for _ in range(8)]
    for i, x in enumerate(xs):
        b.add(addr, base, i * 4)
        b.load(x, addr, s_in)
    tmp = b.vreg(DType.F32)
    for stage in (1, 2, 4):
        for i in range(8):
            if i & stage:
                continue
            j = i | stage
            b.add(tmp, xs[i], xs[j])
            b.sub(xs[j], xs[i], xs[j])
            b.mov(xs[i], tmp)
    for i, x in enumerate(xs):
        b.add(addr, base, i * 4)
        b.store(x, addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    inp = rng.uniform(-1, 1, (groups, 8)).astype(np.float32)
    out = np.zeros((groups, 8), dtype=np.float32)

    def check(buffers):
        h = np.array([[1]])
        for _ in range(3):
            h = np.block([[h, h], [h, -h]])
        expected = inp @ h.T
        np.testing.assert_allclose(
            buffers["out"].reshape(groups, 8), expected, rtol=1e-4, atol=1e-4)

    return Workload(
        name="fwht",
        program=program,
        buffers={"inp": inp.reshape(-1), "out": out.reshape(-1)},
        steps=[LaunchStep(global_size=groups)],
        check=check,
        category="coherent",
        description="8-point fast Walsh-Hadamard transform",
    )


def haar_dwt(n: int = 1024, levels: int = 3, simd_width: int = 16,
             seed: int = 72) -> Workload:
    """DWTH: Haar wavelet, one launch per level; shrinking launches leave
    dispatch-mask tails."""
    b = KernelBuilder("dwth", simd_width)
    gid = b.global_id()
    s_in, s_avg, s_diff = (b.surface_arg(x) for x in ("inp", "avg", "diff"))
    a = b.vreg(DType.F32)
    c = b.vreg(DType.F32)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 3)  # element pair: 8 bytes
    b.load(a, addr, s_in)
    b.add(addr, addr, 4)
    b.load(c, addr, s_in)
    avg = b.vreg(DType.F32)
    diff = b.vreg(DType.F32)
    b.add(avg, a, c)
    b.mul(avg, avg, 0.5)
    b.sub(diff, a, c)
    b.mul(diff, diff, 0.5)
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(avg, out_addr, s_avg)
    b.store(diff, out_addr, s_diff)
    program = b.finish()

    rng = np.random.default_rng(seed)
    inp = rng.uniform(-1, 1, n).astype(np.float32)
    work = inp.copy()
    avg = np.zeros(n // 2, dtype=np.float32)
    diff_all = np.zeros(n, dtype=np.float32)  # concatenated detail bands
    diff = np.zeros(n // 2, dtype=np.float32)

    expected_avg = inp.astype(np.float32).copy()
    expected_diffs = []
    for _ in range(levels):
        pairs = expected_avg.reshape(-1, 2)
        expected_diffs.append(((pairs[:, 0] - pairs[:, 1]) * 0.5))
        expected_avg = ((pairs[:, 0] + pairs[:, 1]) * 0.5).astype(np.float32)

    state = {"offset": 0}

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= levels:
            return None
        length = n >> index
        if index > 0:
            # Promote previous level's averages to the next level's input
            # and archive its details.
            buffers["inp"][:length] = buffers["avg"][:length]
            prev = length
            buffers["diff_all"][state["offset"]:state["offset"] + prev] = (
                buffers["diff"][:prev])
            state["offset"] += prev
        return LaunchStep(global_size=length // 2)

    def check(buffers):
        length = n >> (levels - 1)
        np.testing.assert_allclose(buffers["avg"][:length // 2],
                                   expected_avg, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(buffers["diff"][:length // 2],
                                   expected_diffs[-1], rtol=1e-4, atol=1e-5)

    return Workload(
        name="dwth",
        program=program,
        buffers={"inp": work, "avg": avg, "diff": diff, "diff_all": diff_all},
        steps=steps,
        check=check,
        category="coherent",
        description="multi-level Haar wavelet transform",
        max_steps=levels + 1,
    )


def convolution(n: int = 1024, simd_width: int = 16, seed: int = 73) -> Workload:
    """SCnv: 5-tap 1-D convolution with clamped edges."""
    taps = (0.0625, 0.25, 0.375, 0.25, 0.0625)
    b = KernelBuilder("scnv", simd_width)
    gid = b.global_id()
    s_in, s_out = b.surface_arg("inp"), b.surface_arg("out")
    length = b.scalar_arg("n", DType.I32)
    last = b.vreg(DType.I32)
    b.sub(last, length, 1)
    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    pos = b.vreg(DType.I32)
    addr = b.vreg(DType.I32)
    val = b.vreg(DType.F32)
    for offset, weight in zip((-2, -1, 0, 1, 2), taps):
        b.add(pos, gid, offset)
        b.max_(pos, pos, 0)
        b.min_(pos, pos, last)
        b.shl(addr, pos, 2)
        b.load(val, addr, s_in)
        b.mad(acc, val, weight, acc)
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(acc, out_addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    inp = rng.uniform(-1, 1, n).astype(np.float32)
    out = np.zeros(n, dtype=np.float32)

    def check(buffers):
        idx = np.arange(n)
        expected = np.zeros(n, dtype=np.float64)
        for offset, weight in zip((-2, -1, 0, 1, 2), taps):
            expected += weight * inp[np.clip(idx + offset, 0, n - 1)]
        np.testing.assert_allclose(buffers["out"], expected, rtol=1e-4,
                                   atol=1e-5)

    return Workload(
        name="scnv",
        program=program,
        buffers={"inp": inp, "out": out},
        steps=[LaunchStep(global_size=n, scalars={"n": n})],
        check=check,
        category="coherent",
        description="5-tap clamped 1-D convolution",
    )


def bitonic_sort(n: int = 256, simd_width: int = 16, seed: int = 74) -> Workload:
    """Bsort: global bitonic network; each pass predicates half the lanes
    in a stride pattern that sweeps from SCC-territory to BCC-territory."""
    if n & (n - 1):
        raise ValueError("bitonic sort requires a power-of-two length")
    b = KernelBuilder("bsort", simd_width)
    gid = b.global_id()
    s_d = b.surface_arg("data")
    dist = b.scalar_arg("dist", DType.I32)
    size = b.scalar_arg("size", DType.I32)

    partner = b.vreg(DType.I32)
    b.xor(partner, gid, dist)
    is_low = b.cmp(CmpOp.GT, partner, gid)
    with b.if_(is_low):
        a = b.vreg(DType.F32)
        c = b.vreg(DType.F32)
        addr_a = b.vreg(DType.I32)
        addr_b = b.vreg(DType.I32)
        b.shl(addr_a, gid, 2)
        b.shl(addr_b, partner, 2)
        b.load(a, addr_a, s_d)
        b.load(c, addr_b, s_d)
        # ascending iff (gid & size) == 0
        dir_bit = b.vreg(DType.I32)
        b.and_(dir_bit, gid, size)
        f_asc = b.cmp(CmpOp.EQ, dir_bit, 0)
        f_gt = b.cmp(CmpOp.GT, a, c, flag=FlagRef(1))
        asc_i = b.vreg(DType.I32)
        gt_i = b.vreg(DType.I32)
        b.sel(asc_i, f_asc, 1, 0)
        b.sel(gt_i, f_gt, 1, 0)
        swap_i = b.vreg(DType.I32)
        b.xor(swap_i, asc_i, gt_i)
        b.not_(swap_i, swap_i)
        b.and_(swap_i, swap_i, 1)  # swap iff (a > c) == ascending
        f_swap = b.cmp(CmpOp.NE, swap_i, 0)
        with b.if_(f_swap):
            b.store(c, addr_a, s_d)
            b.store(a, addr_b, s_d)
    program = b.finish()

    rng = np.random.default_rng(seed)
    data0 = rng.uniform(-100, 100, n).astype(np.float32)
    data = data0.copy()

    passes = []
    size = 2
    while size <= n:
        dist = size // 2
        while dist >= 1:
            passes.append((dist, size))
            dist //= 2
        size *= 2

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= len(passes):
            return None
        dist, size = passes[index]
        return LaunchStep(global_size=n, scalars={"dist": dist, "size": size})

    def check(buffers):
        np.testing.assert_array_equal(buffers["data"], np.sort(data0))

    return Workload(
        name="bsort",
        program=program,
        buffers={"data": data},
        steps=steps,
        check=check,
        category="divergent",
        description="bitonic sort network with predicated compare-and-swap",
        max_steps=len(passes) + 1,
    )


def aes_round(blocks: int = 512, simd_width: int = 16, seed: int = 75) -> Workload:
    """AES: one SubBytes+AddRoundKey round over 32-bit words.

    Control flow is perfectly coherent but every byte substitution is a
    per-lane table gather — the *memory divergence* counterpoint to the
    branch-divergent workloads (the paper distinguishes the two).
    """
    b = KernelBuilder("aes", simd_width)
    gid = b.global_id()
    s_state = b.surface_arg("state")
    s_sbox = b.surface_arg("sbox")
    s_key = b.surface_arg("key")

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    word = b.vreg(DType.I32)
    b.load(word, addr, s_state)
    result = b.vreg(DType.I32)
    b.mov(result, 0)
    byte = b.vreg(DType.I32)
    sub = b.vreg(DType.I32)
    taddr = b.vreg(DType.I32)
    for shift in (0, 8, 16, 24):
        b.shr(byte, word, shift)
        b.and_(byte, byte, 0xFF)
        b.shl(taddr, byte, 2)  # 4-byte table entries
        b.load(sub, taddr, s_sbox)
        b.shl(sub, sub, shift)
        b.or_(result, result, sub)
    key = b.vreg(DType.I32)
    b.load(key, addr, s_key)
    b.xor(result, result, key)
    b.store(result, addr, s_state)
    program = b.finish()

    rng = np.random.default_rng(seed)
    sbox = rng.permutation(256).astype(np.int32)
    state0 = rng.integers(0, 2**31, blocks).astype(np.int32)
    key = rng.integers(0, 2**31, blocks).astype(np.int32)
    state = state0.copy()

    def check(buffers):
        w = state0.astype(np.int64) & 0xFFFFFFFF
        result = np.zeros(blocks, dtype=np.int64)
        for shift in (0, 8, 16, 24):
            byte = (w >> shift) & 0xFF
            result |= (sbox[byte].astype(np.int64) & 0xFF) << shift
        result ^= key.astype(np.int64) & 0xFFFFFFFF
        result = np.where(result >= 2**31, result - 2**32, result)
        np.testing.assert_array_equal(buffers["state"], result.astype(np.int32))

    return Workload(
        name="aes",
        program=program,
        buffers={"state": state, "sbox": sbox, "key": key},
        steps=[LaunchStep(global_size=blocks)],
        check=check,
        category="coherent",
        description="AES SubBytes round with per-lane S-box gathers",
    )
