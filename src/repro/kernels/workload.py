"""Workload abstraction: a kernel plus its data, launches, and checker.

A :class:`Workload` packages everything needed to run one benchmark from
the paper's Table 1 on the simulator: the compiled program, input/output
buffers, one or more launch steps (iterative algorithms like BFS launch
once per level, with the host inspecting a flag buffer in between), and
a correctness check against a host reference.  :func:`run_workload`
executes the whole thing under a given GPU configuration and returns the
merged measurements.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from ..errors import JobTimeoutError, VerificationError
from ..gpu.config import GpuConfig
from ..gpu.results import KernelRunResult, merge_results
from ..gpu.simulator import GpuSimulator
from ..isa.program import Program


@dataclass
class LaunchStep:
    """One kernel launch within a workload."""

    global_size: int
    local_size: Optional[int] = None
    scalars: Dict[str, float] = field(default_factory=dict)


#: Either a fixed launch list, or a host loop: called with (buffers,
#: step_index), returning the next LaunchStep or None to stop.
StepSource = Union[List[LaunchStep], Callable[[Dict[str, np.ndarray], int], Optional[LaunchStep]]]


@dataclass
class Workload:
    """A runnable benchmark: program + data + launches + reference check."""

    name: str
    program: Program
    buffers: Dict[str, np.ndarray]
    steps: StepSource
    check: Optional[Callable[[Dict[str, np.ndarray]], None]] = None
    category: str = "divergent"  # paper's coherent/divergent classification
    description: str = ""
    max_steps: int = 10_000
    #: False for workloads whose execution masks legitimately depend on
    #: simulation timing — e.g. level-synchronous BFS, where threads of
    #: one launch race (benignly) on the levels array, so which lanes see
    #: a neighbour as "unvisited" varies with the policy's cycle
    #: interleaving.  ``repro verify`` still requires bit-identical final
    #: buffers and instruction counts for such workloads, but not
    #: identical per-instruction mask statistics.
    mask_deterministic: bool = True

    def iter_steps(self) -> Iterator[LaunchStep]:
        """Yield launch steps, consulting the host loop if dynamic."""
        if callable(self.steps):
            for index in range(self.max_steps):
                step = self.steps(self.buffers, index)
                if step is None:
                    return
                yield step
            raise RuntimeError(
                f"workload {self.name!r} exceeded max_steps={self.max_steps}"
            )
        else:
            yield from self.steps

    def verify(self) -> None:
        """Run the reference check (raises AssertionError on mismatch)."""
        if self.check is not None:
            self.check(self.buffers)


def digest_buffers(buffers: Dict[str, np.ndarray]) -> str:
    """Deterministic SHA-256 digest of a workload's buffer contents.

    Covers every buffer's name, dtype, shape, and raw bytes (in sorted
    name order), so two simulations produced bit-identical data iff
    their digests match.  ``repro verify`` compares this across
    compaction policies to certify functional equivalence.
    """
    digest = hashlib.sha256()
    for name in sorted(buffers):
        array = np.ascontiguousarray(buffers[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def run_workload(
    workload: Workload,
    config: Optional[GpuConfig] = None,
    verify: bool = True,
    host_seconds: Optional[float] = None,
    hostprof=None,
    trace_sink: Optional[List] = None,
) -> KernelRunResult:
    """Simulate every launch step of *workload* under *config*.

    Returns the merged :class:`KernelRunResult`; when *verify* is True
    the workload's host reference check runs afterwards, so a passing
    run certifies functional correctness as well as timing.  A failing
    check raises :class:`~repro.errors.VerificationError`.

    *host_seconds* caps the whole workload's wall-clock time: the cycle
    loop and the gaps between launch steps check the deadline and raise
    :class:`~repro.errors.JobTimeoutError` once it passes.  (Host code
    that blocks without returning — a sleeping step source — can only be
    interrupted from outside the process; the runner's pool enforces a
    grace deadline for that case.)

    *hostprof* optionally attaches a
    :class:`~repro.telemetry.hostprof.HostProfiler` for exact per-opcode
    host-time accounting inside the EUs.

    *trace_sink*, when a list, collects every launch step's issued ALU
    instructions as :class:`~repro.trace.format.TraceEvent` records (the
    paper's instrumented functional model), which is how ``repro
    verify`` cross-checks the simulator against the trace profiler.
    """
    deadline = (time.monotonic() + host_seconds
                if host_seconds is not None else None)
    sim = GpuSimulator(config if config is not None else GpuConfig(),
                       wall_deadline=deadline, hostprof=hostprof)
    results = []
    for step in workload.iter_steps():
        if deadline is not None and time.monotonic() > deadline:
            raise JobTimeoutError(
                f"workload {workload.name!r} exceeded its {host_seconds:g}s "
                f"wall-clock budget after {len(results)} launch step(s)"
            )
        results.append(
            sim.run(
                workload.program,
                step.global_size,
                step.local_size,
                buffers=workload.buffers,
                scalars=step.scalars,
                trace_sink=trace_sink,
            )
        )
    if not results:
        raise RuntimeError(f"workload {workload.name!r} produced no launches")
    if verify:
        try:
            workload.verify()
        except VerificationError:
            raise
        except AssertionError as exc:
            detail = f": {exc}" if str(exc) else ""
            raise VerificationError(
                f"workload {workload.name!r} failed its host reference "
                f"check{detail}"
            ) from exc
    merged = merge_results(results)
    merged.buffers_digest = digest_buffers(workload.buffers)
    return merged


def run_workload_all_policies(workload_factory, config: Optional[GpuConfig] = None,
                              policies=None, runner=None) -> Dict[str, KernelRunResult]:
    """Run fresh instances of a workload under several compaction policies.

    *workload_factory* is either a registry name (preferred — such jobs
    are cacheable and can run in worker processes) or a zero-argument
    factory called once per policy, so each timed run starts from
    pristine input data (outputs are written in place).  All policy runs
    go through the shared :mod:`repro.runner` engine as one batch.
    """
    from ..core.policy import CompactionPolicy
    from .. import runner as runner_mod

    engine = runner if runner is not None else runner_mod.default_runner()
    base = config if config is not None else GpuConfig()
    if policies is None:
        policies = (CompactionPolicy.IVB, CompactionPolicy.BCC, CompactionPolicy.SCC)
    jobs: Dict[CompactionPolicy, runner_mod.Job] = {}
    for policy in policies:
        if isinstance(workload_factory, str):
            jobs[policy] = runner_mod.Job(workload_factory,
                                          base.with_policy(policy))
        else:
            jobs[policy] = runner_mod.Job(
                getattr(workload_factory, "__name__", "inline"),
                base.with_policy(policy), factory=workload_factory)
    results = engine.run(jobs.values())
    return {policy.value: results[job] for policy, job in jobs.items()}
