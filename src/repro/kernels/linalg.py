"""Coherent linear-algebra workloads (paper Table 1: VA, DP, MVM, MT...).

These kernels exhibit near-perfect SIMD efficiency — every lane follows
the same control path — so they populate the right-hand ("coherent")
side of Figure 3 and demonstrate that BCC/SCC neither help nor hurt
coherent applications.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def vector_add(n: int = 4096, simd_width: int = 16) -> Workload:
    """VA: c[i] = a[i] + b[i]."""
    b = KernelBuilder("va", simd_width)
    gid = b.global_id()
    sa, sb, sc = b.surface_arg("a"), b.surface_arg("b"), b.surface_arg("c")
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    b.load(x, addr, sa)
    b.load(y, addr, sb)
    b.add(x, x, y)
    b.store(x, addr, sc)
    program = b.finish()

    rng = np.random.default_rng(1)
    a = rng.standard_normal(n).astype(np.float32)
    bb = rng.standard_normal(n).astype(np.float32)
    c = np.zeros(n, dtype=np.float32)

    def check(buffers):
        np.testing.assert_allclose(buffers["c"], a + bb, rtol=1e-6)

    return Workload(
        name="va",
        program=program,
        buffers={"a": a, "b": bb, "c": c},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="coherent",
        description="vector addition (linear algebra)",
    )


def dot_product(n: int = 4096, simd_width: int = 16) -> Workload:
    """DP: partial dot products, one strided accumulation per work-item."""
    stride = 4  # each work-item accumulates `stride` strided elements
    b = KernelBuilder("dp", simd_width)
    gid = b.global_id()
    sa, sb, sp = b.surface_arg("a"), b.surface_arg("b"), b.surface_arg("partial")
    nitems = b.scalar_arg("n", DType.I32)
    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    idx = b.vreg(DType.I32)
    b.mov(idx, gid)
    addr = b.vreg(DType.I32)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    b.do_()
    b.shl(addr, idx, 2)
    b.load(x, addr, sa)
    b.load(y, addr, sb)
    b.mad(acc, x, y, acc)
    b.add(idx, idx, n // stride)
    f = b.cmp(CmpOp.LT, idx, nitems)
    b.while_(f)
    out_addr = b.vreg(DType.I32)
    b.shl(out_addr, gid, 2)
    b.store(acc, out_addr, sp)
    program = b.finish()

    rng = np.random.default_rng(2)
    a = rng.standard_normal(n).astype(np.float32)
    bb = rng.standard_normal(n).astype(np.float32)
    partial = np.zeros(n // stride, dtype=np.float32)

    def check(buffers):
        total = float(buffers["partial"].sum())
        np.testing.assert_allclose(total, float(np.dot(a, bb)), rtol=1e-3)

    return Workload(
        name="dp",
        program=program,
        buffers={"a": a, "b": bb, "partial": partial},
        steps=[LaunchStep(global_size=n // stride, scalars={"n": n})],
        check=check,
        category="coherent",
        description="dot product with strided per-lane accumulation",
    )


def matrix_vector(rows: int = 256, cols: int = 64, simd_width: int = 16) -> Workload:
    """MVM: y = A @ x, one row per work-item."""
    b = KernelBuilder("mvm", simd_width)
    gid = b.global_id()
    sa, sx, sy = b.surface_arg("A"), b.surface_arg("x"), b.surface_arg("y")
    ncols = b.scalar_arg("cols", DType.I32)
    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    col = b.vreg(DType.I32)
    b.mov(col, 0)
    row_base = b.vreg(DType.I32)
    b.mul(row_base, gid, cols)
    a_addr = b.vreg(DType.I32)
    x_addr = b.vreg(DType.I32)
    a_val = b.vreg(DType.F32)
    x_val = b.vreg(DType.F32)
    tmp = b.vreg(DType.I32)
    b.do_()
    b.add(tmp, row_base, col)
    b.shl(a_addr, tmp, 2)
    b.load(a_val, a_addr, sa)
    b.shl(x_addr, col, 2)
    b.load(x_val, x_addr, sx)
    b.mad(acc, a_val, x_val, acc)
    b.add(col, col, 1)
    f = b.cmp(CmpOp.LT, col, ncols)
    b.while_(f)
    y_addr = b.vreg(DType.I32)
    b.shl(y_addr, gid, 2)
    b.store(acc, y_addr, sy)
    program = b.finish()

    rng = np.random.default_rng(3)
    a = rng.standard_normal((rows, cols)).astype(np.float32)
    x = rng.standard_normal(cols).astype(np.float32)
    y = np.zeros(rows, dtype=np.float32)

    def check(buffers):
        np.testing.assert_allclose(
            buffers["y"], a @ x, rtol=1e-3, atol=1e-3
        )

    return Workload(
        name="mvm",
        program=program,
        buffers={"A": a.reshape(-1), "x": x, "y": y},
        steps=[LaunchStep(global_size=rows, scalars={"cols": cols})],
        check=check,
        category="coherent",
        description="matrix-vector multiplication, one row per work-item",
    )


def transpose(dim: int = 64, simd_width: int = 16) -> Workload:
    """Trans-N: out[j, i] = in[i, j] (gathered reads, coherent control)."""
    b = KernelBuilder("transpose", simd_width)
    gid = b.global_id()
    si, so = b.surface_arg("inp"), b.surface_arg("out")
    n = b.scalar_arg("dim", DType.I32)
    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    b.div(row, gid, n)
    tmp = b.vreg(DType.I32)
    b.mul(tmp, row, n)
    b.sub(col, gid, tmp)
    src_addr = b.vreg(DType.I32)
    b.shl(src_addr, gid, 2)
    val = b.vreg(DType.F32)
    b.load(val, src_addr, si)
    dst_idx = b.vreg(DType.I32)
    b.mad(dst_idx, col, n, row)
    dst_addr = b.vreg(DType.I32)
    b.shl(dst_addr, dst_idx, 2)
    b.store(val, dst_addr, so)
    program = b.finish()

    rng = np.random.default_rng(4)
    inp = rng.standard_normal((dim, dim)).astype(np.float32)
    out = np.zeros((dim, dim), dtype=np.float32)

    def check(buffers):
        np.testing.assert_array_equal(
            buffers["out"].reshape(dim, dim), inp.T
        )

    return Workload(
        name="transpose",
        program=program,
        buffers={"inp": inp.reshape(-1), "out": out.reshape(-1)},
        steps=[LaunchStep(global_size=dim * dim, scalars={"dim": dim})],
        check=check,
        category="coherent",
        description="matrix transpose (memory-divergent writes, coherent control)",
    )


def matrix_multiply(dim: int = 32, simd_width: int = 16) -> Workload:
    """MM: C = A @ B, one output element per work-item."""
    b = KernelBuilder("mm", simd_width)
    gid = b.global_id()
    sa, sb, sc = b.surface_arg("A"), b.surface_arg("B"), b.surface_arg("C")
    n = b.scalar_arg("dim", DType.I32)
    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    b.div(row, gid, n)
    tmp = b.vreg(DType.I32)
    b.mul(tmp, row, n)
    b.sub(col, gid, tmp)
    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    k = b.vreg(DType.I32)
    b.mov(k, 0)
    a_idx = b.vreg(DType.I32)
    b_idx = b.vreg(DType.I32)
    a_addr = b.vreg(DType.I32)
    b_addr = b.vreg(DType.I32)
    a_val = b.vreg(DType.F32)
    b_val = b.vreg(DType.F32)
    b.do_()
    b.mad(a_idx, row, n, k)
    b.shl(a_addr, a_idx, 2)
    b.load(a_val, a_addr, sa)
    b.mad(b_idx, k, n, col)
    b.shl(b_addr, b_idx, 2)
    b.load(b_val, b_addr, sb)
    b.mad(acc, a_val, b_val, acc)
    b.add(k, k, 1)
    f = b.cmp(CmpOp.LT, k, n)
    b.while_(f)
    c_addr = b.vreg(DType.I32)
    b.shl(c_addr, gid, 2)
    b.store(acc, c_addr, sc)
    program = b.finish()

    rng = np.random.default_rng(5)
    a = rng.standard_normal((dim, dim)).astype(np.float32)
    bm = rng.standard_normal((dim, dim)).astype(np.float32)
    c = np.zeros((dim, dim), dtype=np.float32)

    def check(buffers):
        np.testing.assert_allclose(
            buffers["C"].reshape(dim, dim), a @ bm, rtol=1e-2, atol=1e-2
        )

    return Workload(
        name="mm",
        program=program,
        buffers={"A": a.reshape(-1), "B": bm.reshape(-1), "C": c.reshape(-1)},
        steps=[LaunchStep(global_size=dim * dim, scalars={"dim": dim})],
        check=check,
        category="coherent",
        description="dense matrix multiplication, one element per work-item",
    )
