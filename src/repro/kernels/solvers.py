"""Solver workloads (paper Table 1: Gauss, LU, Trd, FW, Path).

Gaussian elimination and LU factorize with one launch per pivot — the
shrinking update region gives heavy dispatch-mask divergence late in the
factorization.  Floyd-Warshall and PathFinder carry branchy min updates;
the Thomas tridiagonal solver is a coherent fixed-loop baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def _dominant_matrix(n: int, seed: int) -> np.ndarray:
    """Random diagonally dominant matrix (elimination needs no pivoting)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
    a[np.arange(n), np.arange(n)] = n + rng.uniform(1, 2, n).astype(np.float32)
    return a


def gauss(dim: int = 24, simd_width: int = 16, seed: int = 60) -> Workload:
    """Gaussian elimination: one launch per pivot column.

    Work-item *g* of launch *k* updates element (i, j) of the trailing
    submatrix: ``A[i, j] -= A[i, k] / A[k, k] * A[k, j]``.
    """
    b = KernelBuilder("gauss", simd_width)
    gid = b.global_id()
    s_a = b.surface_arg("A")
    n = b.scalar_arg("n", DType.I32)
    k = b.scalar_arg("k", DType.I32)

    # Decode (i, j): i in [k+1, n), j in [k, n).
    cols = b.vreg(DType.I32)
    b.sub(cols, n, k)
    i = b.vreg(DType.I32)
    j = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(i, gid, cols)
    b.mul(tmp, i, cols)
    b.sub(j, gid, tmp)
    b.add(i, i, k)
    b.add(i, i, 1)
    b.add(j, j, k)

    addr = b.vreg(DType.I32)
    pivot = b.vreg(DType.F32)
    lead = b.vreg(DType.F32)
    upper = b.vreg(DType.F32)
    cur = b.vreg(DType.F32)
    # pivot = A[k, k]; lead = A[i, k]; upper = A[k, j]; cur = A[i, j]
    b.mul(addr, k, n)
    b.add(addr, addr, k)
    b.shl(addr, addr, 2)
    b.load(pivot, addr, s_a)
    b.mul(addr, i, n)
    b.add(addr, addr, k)
    b.shl(addr, addr, 2)
    b.load(lead, addr, s_a)
    b.mul(addr, k, n)
    b.add(addr, addr, j)
    b.shl(addr, addr, 2)
    b.load(upper, addr, s_a)
    b.mul(addr, i, n)
    b.add(addr, addr, j)
    b.shl(addr, addr, 2)
    b.load(cur, addr, s_a)

    ratio = b.vreg(DType.F32)
    b.div(ratio, lead, pivot)
    delta = b.vreg(DType.F32)
    b.mul(delta, ratio, upper)
    b.sub(cur, cur, delta)
    b.store(cur, addr, s_a)
    program = b.finish()

    a0 = _dominant_matrix(dim, seed)
    a = a0.copy()

    expected = a0.astype(np.float64).copy()
    for kk in range(dim - 1):
        for ii in range(kk + 1, dim):
            ratio = expected[ii, kk] / expected[kk, kk]
            expected[ii, kk:] = expected[ii, kk:] - ratio * expected[kk, kk:]

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= dim - 1:
            return None
        rows = dim - index - 1
        cols = dim - index
        return LaunchStep(global_size=rows * cols,
                          scalars={"n": dim, "k": index})

    def check(buffers):
        np.testing.assert_allclose(
            buffers["A"].reshape(dim, dim), expected, rtol=2e-3, atol=2e-3)

    return Workload(
        name="gauss",
        program=program,
        buffers={"A": a.reshape(-1)},
        steps=steps,
        check=check,
        category="divergent",
        description="Gaussian elimination, one launch per pivot",
        max_steps=dim,
    )


def lu_decompose(dim: int = 20, simd_width: int = 16, seed: int = 61) -> Workload:
    """Doolittle LU (in place): the j == k lanes write the multiplier
    while j > k lanes update — a per-warp two-way branch every launch."""
    b = KernelBuilder("lu", simd_width)
    gid = b.global_id()
    s_a = b.surface_arg("A")
    n = b.scalar_arg("n", DType.I32)
    k = b.scalar_arg("k", DType.I32)

    cols = b.vreg(DType.I32)
    b.sub(cols, n, k)
    i = b.vreg(DType.I32)
    j = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(i, gid, cols)
    b.mul(tmp, i, cols)
    b.sub(j, gid, tmp)
    b.add(i, i, k)
    b.add(i, i, 1)
    b.add(j, j, k)

    addr = b.vreg(DType.I32)
    pivot = b.vreg(DType.F32)
    lead = b.vreg(DType.F32)
    b.mul(addr, k, n)
    b.add(addr, addr, k)
    b.shl(addr, addr, 2)
    b.load(pivot, addr, s_a)
    b.mul(addr, i, n)
    b.add(addr, addr, k)
    b.shl(addr, addr, 2)
    b.load(lead, addr, s_a)
    mult = b.vreg(DType.F32)
    b.div(mult, lead, pivot)

    is_first = b.cmp(CmpOp.EQ, j, k)
    with b.if_(is_first):
        # Store the L multiplier into the eliminated position.
        b.store(mult, addr, s_a)
        b.else_()
        upper = b.vreg(DType.F32)
        cur = b.vreg(DType.F32)
        uaddr = b.vreg(DType.I32)
        b.mul(uaddr, k, n)
        b.add(uaddr, uaddr, j)
        b.shl(uaddr, uaddr, 2)
        b.load(upper, uaddr, s_a)
        caddr = b.vreg(DType.I32)
        b.mul(caddr, i, n)
        b.add(caddr, caddr, j)
        b.shl(caddr, caddr, 2)
        b.load(cur, caddr, s_a)
        delta = b.vreg(DType.F32)
        b.mul(delta, mult, upper)
        b.sub(cur, cur, delta)
        b.store(cur, caddr, s_a)
    program = b.finish()

    a0 = _dominant_matrix(dim, seed)
    a = a0.copy()

    expected = a0.astype(np.float64).copy()
    for kk in range(dim - 1):
        for ii in range(kk + 1, dim):
            mult = expected[ii, kk] / expected[kk, kk]
            expected[ii, kk] = mult
            expected[ii, kk + 1:] -= mult * expected[kk, kk + 1:]

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= dim - 1:
            return None
        rows = dim - index - 1
        cols = dim - index
        return LaunchStep(global_size=rows * cols,
                          scalars={"n": dim, "k": index})

    def check(buffers):
        np.testing.assert_allclose(
            buffers["A"].reshape(dim, dim), expected, rtol=2e-3, atol=2e-3)

    return Workload(
        name="lu",
        program=program,
        buffers={"A": a.reshape(-1)},
        steps=steps,
        check=check,
        category="divergent",
        description="Doolittle LU decomposition, branch on multiplier column",
        max_steps=dim,
    )


def tridiagonal(systems: int = 256, size: int = 12, simd_width: int = 16,
                seed: int = 62) -> Workload:
    """Trd: batched Thomas algorithm, one independent system per lane.

    Fixed forward/backward sweeps: fully coherent, EM-pipe heavy.
    """
    b = KernelBuilder("trd", simd_width)
    gid = b.global_id()
    s_low = b.surface_arg("low")
    s_diag = b.surface_arg("diag")
    s_up = b.surface_arg("up")
    s_rhs = b.surface_arg("rhs")
    s_cp = b.surface_arg("cprime")
    s_x = b.surface_arg("x")
    m = b.scalar_arg("m", DType.I32)

    base = b.vreg(DType.I32)
    b.mul(base, gid, m)
    idx = b.vreg(DType.I32)
    addr = b.vreg(DType.I32)
    lo = b.vreg(DType.F32)
    di = b.vreg(DType.F32)
    up = b.vreg(DType.F32)
    rh = b.vreg(DType.F32)
    cprev = b.vreg(DType.F32)
    dprev = b.vreg(DType.F32)
    denom = b.vreg(DType.F32)

    # Forward sweep: c'[i] = up/denom, d'[i] = (rhs - low*d'[i-1])/denom,
    # denom = diag - low*c'[i-1]; store c' and running d' in cprime/x.
    b.mov(cprev, 0.0)
    b.mov(dprev, 0.0)
    it = b.vreg(DType.I32)
    b.mov(it, 0)
    b.do_()
    b.add(idx, base, it)
    b.shl(addr, idx, 2)
    b.load(lo, addr, s_low)
    b.load(di, addr, s_diag)
    b.load(up, addr, s_up)
    b.load(rh, addr, s_rhs)
    scaled = b.vreg(DType.F32)
    b.mul(scaled, lo, cprev)
    b.sub(denom, di, scaled)
    b.div(cprev, up, denom)
    b.mul(scaled, lo, dprev)
    b.sub(scaled, rh, scaled)
    b.div(dprev, scaled, denom)
    b.store(cprev, addr, s_cp)
    b.store(dprev, addr, s_x)
    b.add(it, it, 1)
    more = b.cmp(CmpOp.LT, it, m)
    b.while_(more)

    # Backward substitution: x[i] = d'[i] - c'[i] * x[i+1].
    xnext = b.vreg(DType.F32)
    b.mov(xnext, 0.0)
    b.sub(it, m, 1)
    b.do_()
    b.add(idx, base, it)
    b.shl(addr, idx, 2)
    b.load(cprev, addr, s_cp)
    b.load(dprev, addr, s_x)
    corr = b.vreg(DType.F32)
    b.mul(corr, cprev, xnext)
    b.sub(xnext, dprev, corr)
    b.store(xnext, addr, s_x)
    b.sub(it, it, 1)
    more = b.cmp(CmpOp.GE, it, 0)
    b.while_(more)
    program = b.finish()

    rng = np.random.default_rng(seed)
    total = systems * size
    low = rng.uniform(-1, 0, total).astype(np.float32)
    up = rng.uniform(-1, 0, total).astype(np.float32)
    diag = (np.abs(low) + np.abs(up)
            + rng.uniform(1, 2, total)).astype(np.float32)
    low[::size] = 0.0
    up[size - 1::size] = 0.0
    rhs = rng.uniform(-1, 1, total).astype(np.float32)
    cprime = np.zeros(total, dtype=np.float32)
    x = np.zeros(total, dtype=np.float32)

    def check(buffers):
        got = buffers["x"].reshape(systems, size)
        for s in range(systems):
            matrix = np.zeros((size, size))
            sl = slice(s * size, (s + 1) * size)
            matrix[np.arange(size), np.arange(size)] = diag[sl]
            matrix[np.arange(1, size), np.arange(size - 1)] = low[sl][1:]
            matrix[np.arange(size - 1), np.arange(1, size)] = up[sl][:-1]
            expected = np.linalg.solve(matrix, rhs[sl])
            np.testing.assert_allclose(got[s], expected, rtol=1e-3, atol=1e-3)

    return Workload(
        name="trd",
        program=program,
        buffers={"low": low, "diag": diag, "up": up, "rhs": rhs,
                 "cprime": cprime, "x": x},
        steps=[LaunchStep(global_size=systems, scalars={"m": size})],
        check=check,
        category="coherent",
        description="batched Thomas tridiagonal solver",
    )


def floyd_warshall(num_vertices: int = 24, simd_width: int = 16,
                   seed: int = 63) -> Workload:
    """FW: all-pairs shortest paths, branchy min, one launch per k."""
    b = KernelBuilder("fw", simd_width)
    gid = b.global_id()
    s_d = b.surface_arg("dist")
    n = b.scalar_arg("n", DType.I32)
    k = b.scalar_arg("k", DType.I32)

    i = b.vreg(DType.I32)
    j = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(i, gid, n)
    b.mul(tmp, i, n)
    b.sub(j, gid, tmp)

    addr = b.vreg(DType.I32)
    dij = b.vreg(DType.F32)
    dik = b.vreg(DType.F32)
    dkj = b.vreg(DType.F32)
    b.mul(addr, i, n)
    b.add(addr, addr, j)
    b.shl(addr, addr, 2)
    b.load(dij, addr, s_d)
    kaddr = b.vreg(DType.I32)
    b.mul(kaddr, i, n)
    b.add(kaddr, kaddr, k)
    b.shl(kaddr, kaddr, 2)
    b.load(dik, kaddr, s_d)
    b.mul(kaddr, k, n)
    b.add(kaddr, kaddr, j)
    b.shl(kaddr, kaddr, 2)
    b.load(dkj, kaddr, s_d)
    via = b.vreg(DType.F32)
    b.add(via, dik, dkj)
    shorter = b.cmp(CmpOp.LT, via, dij)
    with b.if_(shorter):
        b.store(via, addr, s_d)
    program = b.finish()

    rng = np.random.default_rng(seed)
    dist0 = rng.uniform(1, 10, (num_vertices, num_vertices)).astype(np.float32)
    np.fill_diagonal(dist0, 0.0)
    dist = dist0.copy()

    expected = dist0.astype(np.float64).copy()
    for kk in range(num_vertices):
        expected = np.minimum(
            expected, expected[:, kk:kk + 1] + expected[kk:kk + 1, :])

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= num_vertices:
            return None
        return LaunchStep(global_size=num_vertices * num_vertices,
                          scalars={"n": num_vertices, "k": index})

    def check(buffers):
        np.testing.assert_allclose(
            buffers["dist"].reshape(num_vertices, num_vertices),
            expected, rtol=1e-4, atol=1e-4)

    return Workload(
        name="fw",
        program=program,
        buffers={"dist": dist.reshape(-1)},
        steps=steps,
        check=check,
        category="divergent",
        description="Floyd-Warshall all-pairs shortest paths (branchy min)",
        max_steps=num_vertices + 1,
    )


def pathfinder(cols: int = 256, rows: int = 8, simd_width: int = 16,
               seed: int = 64) -> Workload:
    """Path: DP over a grid, min of three neighbours with edge branches."""
    b = KernelBuilder("pathfinder", simd_width)
    gid = b.global_id()
    s_data = b.surface_arg("data")
    s_old = b.surface_arg("old")
    s_new = b.surface_arg("new")
    ncols = b.scalar_arg("cols", DType.I32)
    row = b.scalar_arg("row", DType.I32)

    addr = b.vreg(DType.I32)
    best = b.vreg(DType.F32)
    side = b.vreg(DType.F32)
    b.shl(addr, gid, 2)
    b.load(best, addr, s_old)
    last = b.vreg(DType.I32)
    b.sub(last, ncols, 1)
    # Left neighbour (guarded).
    f = b.cmp(CmpOp.GT, gid, 0)
    with b.if_(f):
        naddr = b.vreg(DType.I32)
        b.sub(naddr, gid, 1)
        b.shl(naddr, naddr, 2)
        b.load(side, naddr, s_old)
        b.min_(best, best, side)
    # Right neighbour (guarded).
    f = b.cmp(CmpOp.LT, gid, last)
    with b.if_(f):
        naddr = b.vreg(DType.I32)
        b.add(naddr, gid, 1)
        b.shl(naddr, naddr, 2)
        b.load(side, naddr, s_old)
        b.min_(best, best, side)
    cost = b.vreg(DType.F32)
    daddr = b.vreg(DType.I32)
    b.mul(daddr, row, ncols)
    b.add(daddr, daddr, gid)
    b.shl(daddr, daddr, 2)
    b.load(cost, daddr, s_data)
    b.add(best, best, cost)
    b.store(best, addr, s_new)
    program = b.finish()

    rng = np.random.default_rng(seed)
    data = rng.uniform(0, 9, (rows, cols)).astype(np.float32)
    old = data[0].copy()
    new = np.zeros(cols, dtype=np.float32)

    expected = data[0].astype(np.float64).copy()
    for r in range(1, rows):
        padded = np.pad(expected, 1, constant_values=np.inf)
        expected = data[r] + np.minimum(
            np.minimum(padded[:-2], padded[1:-1]), padded[2:])

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= rows - 1:
            return None
        if index > 0:
            buffers["old"][:] = buffers["new"]
        return LaunchStep(global_size=cols,
                          scalars={"cols": cols, "row": index + 1})

    def check(buffers):
        np.testing.assert_allclose(buffers["new"], expected, rtol=1e-4)

    return Workload(
        name="pathfinder",
        program=program,
        buffers={"data": data.reshape(-1), "old": old, "new": new},
        steps=steps,
        check=check,
        category="divergent",
        description="grid path DP with boundary-guard branches (Rodinia Path)",
        max_steps=rows,
    )
