"""The workload suite: simulator-executable stand-ins for paper Table 1.

Every entry in :data:`WORKLOAD_REGISTRY` is a zero-argument factory
returning a fresh :class:`~repro.kernels.workload.Workload` at its
default (test-friendly) problem size; factories accept keyword arguments
for larger benchmark-scale runs.  Registry keys are the paper's workload
names where one exists.
"""

from typing import Callable, Dict

from ..dsl.kernels import DSL_KERNELS
from ..dsl.stress import dynamic_factory, parse_stress_name
from .faults import (
    FAULT_PREFIX,
    count_executions,
    crash_once,
    sleep_then_run,
    spin_forever,
)
from .finance import binomial_option, black_scholes, monte_carlo_asian
from .graphics import fragment_shade
from .imaging import box_filter, gaussian_noise, sobel
from .learn import backprop_layer, binary_search, hmm_viterbi, srad
from .linalg import dot_product, matrix_multiply, matrix_vector, transpose, vector_add
from .micro import (
    FIG8_PATTERNS,
    branch_pattern,
    nested_divergence,
    predicated_pattern,
    table2_path_masks,
)
from .misc import eigenvalue, kmeans_assign, knn, mersenne_mix, scan_reduce
from .raytracing import ambient_occlusion, primary_rays
from .signal import aes_round, bitonic_sort, convolution, dct8, fwht, haar_dwt
from .solvers import floyd_warshall, gauss, lu_decompose, pathfinder, tridiagonal
from .rodinia import bfs, hotspot, lavamd, nw, particlefilter
from .workload import LaunchStep, Workload, run_workload, run_workload_all_policies

class WorkloadRegistry(Dict[str, Callable[[], Workload]]):
    """The workload name -> factory mapping, plus generated families.

    Behaves like a plain dict for every statically registered workload,
    but additionally resolves the parameterized ``stress_*`` family
    (:mod:`repro.dsl.stress`): any well-formed stress name — e.g.
    ``stress_s7_d3_e80_t2_m1`` — looks up, ``in``-tests, and ``get``s as
    if it were registered, so run/sweep/verify/serve/worker accept
    stress workloads exactly like built-ins.  Dynamic names are *not*
    memoized into the dict: iteration and ``len`` only ever see the
    static entries, keeping experiment groups stable.
    """

    def __missing__(self, name: str) -> Callable[[], Workload]:
        factory = dynamic_factory(name)
        if factory is None:
            raise KeyError(name)
        return factory

    def __contains__(self, name: object) -> bool:
        if super().__contains__(name):
            return True
        return isinstance(name, str) and parse_stress_name(name) is not None

    def get(self, name, default=None):
        try:
            return self[name]
        except KeyError:
            return default


#: name -> factory for every simulator workload, coherent and divergent.
WORKLOAD_REGISTRY: Dict[str, Callable[[], Workload]] = WorkloadRegistry({
    # coherent
    "va": vector_add,
    "dp": dot_product,
    "mvm": matrix_vector,
    "transpose": transpose,
    "mm": matrix_multiply,
    "bscholes": black_scholes,
    "bop": binomial_option,
    "boxfilter": box_filter,
    "mt": mersenne_mix,
    "dct8": dct8,
    "fwht": fwht,
    "dwth": haar_dwt,
    "scnv": convolution,
    "aes": aes_round,
    "trd": tridiagonal,
    # divergent
    "mca": monte_carlo_asian,
    "glfrag": fragment_shade,
    "gauss": gauss,
    "lu": lu_decompose,
    "fw": floyd_warshall,
    "pathfinder": pathfinder,
    "bsort": bitonic_sort,
    "bsearch": binary_search,
    "bp": backprop_layer,
    "hmm": hmm_viterbi,
    "srad": srad,
    "sobel": sobel,
    "gnoise": gaussian_noise,
    "kmeans": kmeans_assign,
    "knn": knn,
    "eigenvalue": eigenvalue,
    "scla": scan_reduce,
    "bfs": bfs,
    "hotspot": hotspot,
    "lavamd": lavamd,
    "nw": nw,
    "particlefilter": particlefilter,
    "rt_pr_conf": lambda **kw: primary_rays("conf", **kw),
    "rt_pr_al": lambda **kw: primary_rays("al", **kw),
    "rt_pr_bl": lambda **kw: primary_rays("bl", **kw),
    "rt_pr_wm": lambda **kw: primary_rays("wm", **kw),
    "rt_ao_al8": lambda **kw: ambient_occlusion("al", simd_width=8, **kw),
    "rt_ao_bl8": lambda **kw: ambient_occlusion("bl", simd_width=8, **kw),
    "rt_ao_wm8": lambda **kw: ambient_occlusion("wm", simd_width=8, **kw),
    "rt_ao_al16": lambda **kw: ambient_occlusion("al", simd_width=16, **kw),
    "rt_ao_bl16": lambda **kw: ambient_occlusion("bl", simd_width=16, **kw),
    "rt_ao_wm16": lambda **kw: ambient_occlusion("wm", simd_width=16, **kw),
    "nested_l1": lambda **kw: nested_divergence(1, **kw),
    "nested_l2": lambda **kw: nested_divergence(2, **kw),
    "nested_l3": lambda **kw: nested_divergence(3, **kw),
    "nested_l4": lambda **kw: nested_divergence(4, **kw),
    # fault injection (testing/CI only; excluded from every group and
    # from the result cache — see repro.kernels.faults)
    "fault_spin": spin_forever,
    "fault_sleep": sleep_then_run,
    "fault_crash": crash_once,
    "fault_count": count_executions,
})

#: Kernels authored in the Python DSL (repro.dsl) — part of the registry
#: but excluded from the paper-figure groups, whose workload sets are
#: fixed by the source material.
DSL_WORKLOADS = tuple(sorted(DSL_KERNELS))
WORKLOAD_REGISTRY.update(DSL_KERNELS)

#: Fault-injection entries: in the registry (so workers can rebuild them
#: by name) but outside every experiment group.
FAULT_WORKLOADS = tuple(
    name for name in WORKLOAD_REGISTRY if name.startswith(FAULT_PREFIX)
)

#: The divergent subset evaluated in Figures 9-12.
DIVERGENT_WORKLOADS = tuple(
    name
    for name in WORKLOAD_REGISTRY
    if name not in (
        "va", "dp", "mvm", "transpose", "mm", "bscholes", "bop", "boxfilter",
        "mt", "dct8", "fwht", "dwth", "scnv", "aes", "trd",
    ) + FAULT_WORKLOADS + DSL_WORKLOADS
)

#: The Rodinia subset of Figure 12.
RODINIA_WORKLOADS = ("bfs", "hotspot", "lavamd", "nw", "particlefilter")

__all__ = [
    "DIVERGENT_WORKLOADS",
    "DSL_KERNELS",
    "DSL_WORKLOADS",
    "FAULT_PREFIX",
    "FAULT_WORKLOADS",
    "WorkloadRegistry",
    "aes_round",
    "backprop_layer",
    "binary_search",
    "bitonic_sort",
    "convolution",
    "dct8",
    "floyd_warshall",
    "fragment_shade",
    "fwht",
    "gauss",
    "haar_dwt",
    "hmm_viterbi",
    "lu_decompose",
    "pathfinder",
    "srad",
    "tridiagonal",
    "FIG8_PATTERNS",
    "RODINIA_WORKLOADS",
    "WORKLOAD_REGISTRY",
    "LaunchStep",
    "Workload",
    "ambient_occlusion",
    "bfs",
    "binomial_option",
    "black_scholes",
    "box_filter",
    "branch_pattern",
    "count_executions",
    "crash_once",
    "dot_product",
    "eigenvalue",
    "gaussian_noise",
    "hotspot",
    "kmeans_assign",
    "knn",
    "lavamd",
    "matrix_multiply",
    "matrix_vector",
    "mersenne_mix",
    "monte_carlo_asian",
    "nested_divergence",
    "nw",
    "particlefilter",
    "predicated_pattern",
    "primary_rays",
    "run_workload",
    "run_workload_all_policies",
    "scan_reduce",
    "sleep_then_run",
    "sobel",
    "spin_forever",
    "table2_path_masks",
    "transpose",
    "vector_add",
]
