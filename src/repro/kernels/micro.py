"""Divergence micro-benchmarks (paper Section 5.2, Figure 8, Table 2).

These kernels create precisely controlled execution-mask patterns:

* :func:`branch_pattern` — a balanced if/else whose taken lanes are an
  arbitrary bit pattern, the micro-benchmark the paper ran on real Ivy
  Bridge hardware to infer the pre-existing half-mask optimization
  (Figure 8's masks 0xFFFF, 0xF0F0, 0x00FF, 0xFF0F, 0xAAAA).
* :func:`nested_divergence` — L levels of nested branches splitting
  lanes by their index bits, producing exactly the per-path masks of
  Table 2 (L1: 5555/AAAA ... L4: sixteen 1-hot masks).
* :func:`predicated_pattern` — straight-line code predicated by a fixed
  mask, isolating compaction from branch-handling effects.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef, RegRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload

#: The five Figure 8 divergence patterns, in the paper's order.
FIG8_PATTERNS = (0xFFFF, 0xF0F0, 0x00FF, 0xFF0F, 0xAAAA)


def _emit_fma_chain(b: KernelBuilder, acc: RegRef, x: RegRef, count: int) -> None:
    """Emit *count* dependent FMAs: acc = acc * 1.0001 + x."""
    for _ in range(count):
        b.mad(acc, acc, 1.0001, x)


def _lane_reg(b: KernelBuilder, width: int) -> RegRef:
    """Register holding each lane's index within its thread (0..width-1)."""
    lid = b.local_id()
    lane = b.vreg(DType.I32)
    b.and_(lane, lid, width - 1)
    return lane


def branch_pattern(
    pattern: int,
    n: int = 1024,
    simd_width: int = 16,
    work: int = 6,
    loop_iters: int = 16,
) -> Workload:
    """Balanced if/else with taken-lane *pattern* (Figure 8 micro-bench).

    Lanes whose bit in *pattern* is set execute the then arm; the rest
    execute the else arm.  Both arms carry identical FMA chains, so with
    no compaction the divergent execution time is exactly double the
    coherent one.
    """
    if not 0 <= pattern < (1 << simd_width):
        raise ValueError(f"pattern 0x{pattern:X} does not fit SIMD{simd_width}")
    b = KernelBuilder(f"branch_{pattern:04x}", simd_width)
    gid = b.global_id()
    sx, sy = b.surface_arg("x"), b.surface_arg("y")
    lane = _lane_reg(b, simd_width)
    bit = b.vreg(DType.I32)
    b.shr(bit, pattern, lane)
    b.and_(bit, bit, 1)
    cond = b.cmp(CmpOp.NE, bit, 0)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, sx)
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    it = b.vreg(DType.I32)
    b.mov(it, 0)
    b.do_()
    with b.if_(cond):
        _emit_fma_chain(b, acc, x, work)
        b.else_()
        _emit_fma_chain(b, acc, x, work)
    b.add(it, it, 1)
    fl = b.cmp(CmpOp.LT, it, loop_iters, flag=FlagRef(1))
    b.while_(fl)
    b.store(acc, addr, sy)
    program = b.finish()

    rng = np.random.default_rng(20)
    x = rng.uniform(0.0, 0.001, n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)

    def check(buffers):
        acc = np.ones(n, dtype=np.float32)
        for _ in range(loop_iters * work):
            acc = acc * np.float32(1.0001) + x
        np.testing.assert_allclose(buffers["y"], acc, rtol=1e-4)

    return Workload(
        name=f"branch_{pattern:04x}",
        program=program,
        buffers={"x": x, "y": y},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent" if pattern not in (0, (1 << simd_width) - 1) else "coherent",
        description=f"balanced if/else with lane pattern 0x{pattern:0{simd_width // 4}X}",
    )


def table2_path_masks(level: int, width: int = 16) -> List[int]:
    """The per-branch-path execution masks of paper Table 2.

    Level L splits the *width* lanes by their low L index bits, giving
    ``2**L`` paths; path *k* contains the lanes congruent to *k* modulo
    ``2**L``.

    >>> [hex(m) for m in table2_path_masks(1)]
    ['0x5555', '0xaaaa']
    """
    if not 1 <= level <= 4:
        raise ValueError(f"Table 2 covers nesting levels 1..4, got {level}")
    paths = 1 << level
    masks = []
    for k in range(paths):
        mask = 0
        for lane in range(width):
            if lane % paths == k:
                mask |= 1 << lane
        masks.append(mask)
    return masks


def nested_divergence(
    level: int,
    n: int = 1024,
    simd_width: int = 16,
    work: int = 4,
) -> Workload:
    """L levels of nested branches on lane-index bits (Table 2 kernels).

    At the leaves, every one of the ``2**level`` paths executes the same
    FMA chain under its Table 2 mask.
    """
    if not 1 <= level <= 4:
        raise ValueError(f"nesting level must be 1..4, got {level}")
    b = KernelBuilder(f"nested_l{level}", simd_width)
    gid = b.global_id()
    sx, sy = b.surface_arg("x"), b.surface_arg("y")
    lane = _lane_reg(b, simd_width)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, sx)
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    bit = b.vreg(DType.I32)

    def emit_level(depth: int) -> None:
        if depth == level:
            _emit_fma_chain(b, acc, x, work)
            return
        b.shr(bit, lane, depth)
        b.and_(bit, bit, 1)
        cond = b.cmp(CmpOp.EQ, bit, 0)
        with b.if_(cond):
            emit_level(depth + 1)
            b.else_()
            emit_level(depth + 1)

    emit_level(0)
    b.store(acc, addr, sy)
    program = b.finish()

    rng = np.random.default_rng(21)
    x = rng.uniform(0.0, 0.001, n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)

    def check(buffers):
        acc = np.ones(n, dtype=np.float32)
        for _ in range(work):
            acc = acc * np.float32(1.0001) + x
        np.testing.assert_allclose(buffers["y"], acc, rtol=1e-4)

    return Workload(
        name=f"nested_l{level}",
        program=program,
        buffers={"x": x, "y": y},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent",
        description=f"{level}-level nested branch divergence (Table 2)",
    )


def predicated_pattern(
    pattern: int,
    n: int = 1024,
    simd_width: int = 16,
    work: int = 16,
) -> Workload:
    """Straight-line FMA chain predicated by a fixed lane *pattern*.

    Exercises compaction on *predication* masks rather than control-flow
    masks (paper Section 3.1: BCC harvests cycles from dispatch, control
    flow, or predication alike).
    """
    b = KernelBuilder(f"pred_{pattern:04x}", simd_width)
    gid = b.global_id()
    sx, sy = b.surface_arg("x"), b.surface_arg("y")
    lane = _lane_reg(b, simd_width)
    bit = b.vreg(DType.I32)
    b.shr(bit, pattern, lane)
    b.and_(bit, bit, 1)
    cond = b.cmp(CmpOp.NE, bit, 0)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, sx)
    acc = b.vreg(DType.F32)
    b.mov(acc, 1.0)
    for _ in range(work):
        b.mad(acc, acc, 1.0001, x, pred=cond)
    b.store(acc, addr, sy)
    program = b.finish()

    rng = np.random.default_rng(22)
    x = rng.uniform(0.0, 0.001, n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)

    def check(buffers):
        acc = np.ones(n, dtype=np.float32)
        enabled = np.array([(pattern >> (i % simd_width)) & 1 for i in range(n)],
                           dtype=bool)
        for _ in range(work):
            acc = np.where(enabled, acc * np.float32(1.0001) + x, acc)
        np.testing.assert_allclose(buffers["y"], acc, rtol=1e-4)

    return Workload(
        name=f"pred_{pattern:04x}",
        program=program,
        buffers={"x": x, "y": y},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="divergent",
        description=f"predicated FMA chain with lane pattern 0x{pattern:04X}",
    )
