"""Particle filter resampling (Rodinia).

The resampling step: each output particle walks the weight CDF until
it passes its own quantile.  The walk length is data
dependent, so lanes retire from the search loop at different
iterations — steady control divergence on top of streaming loads.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.registers import FlagRef
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload


def _build_program(simd_width: int):
    b = KernelBuilder("particlefilter", simd_width)
    gid = b.global_id()
    s_cdf = b.surface_arg("cdf")
    s_u = b.surface_arg("u")
    s_out = b.surface_arg("indices")
    n = b.scalar_arg("n", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    u = b.vreg(DType.F32)
    b.load(u, addr, s_u)

    j = b.vreg(DType.I32)
    b.mov(j, 0)
    cdf_val = b.vreg(DType.F32)
    cdf_addr = b.vreg(DType.I32)
    b.do_()
    b.shl(cdf_addr, j, 2)
    b.load(cdf_val, cdf_addr, s_cdf)
    found = b.cmp(CmpOp.GE, cdf_val, u)
    b.break_(found)
    b.add(j, j, 1)
    more = b.cmp(CmpOp.LT, j, n, flag=FlagRef(1))
    b.while_(more)
    b.min_(j, j, n)  # clamp the never-found case (u == 1.0 edge)
    b.store(j, addr, s_out)
    return b.finish()


def particlefilter(num_particles: int = 256, simd_width: int = 16,
                   seed: int = 34) -> Workload:
    """Multinomial resampling over a random weight distribution."""
    program = _build_program(simd_width)
    rng = np.random.default_rng(seed)
    weights = rng.exponential(1.0, num_particles).astype(np.float64)
    weights /= weights.sum()
    cdf = np.cumsum(weights).astype(np.float32)
    cdf[-1] = 1.0
    # Multinomial resampling: independent quantiles per particle, so
    # adjacent lanes walk very different CDF prefixes (heavy loop
    # divergence); systematic resampling would sort these and make the
    # warp nearly lockstep.
    u = rng.uniform(0.0, 1.0, num_particles).astype(np.float32)
    indices = np.zeros(num_particles, dtype=np.int32)

    def check(buffers):
        expected = np.searchsorted(cdf, u, side="left").astype(np.int32)
        # searchsorted('left') returns first j with cdf[j] >= u
        np.testing.assert_array_equal(buffers["indices"], expected)

    return Workload(
        name="particlefilter",
        program=program,
        buffers={"cdf": cdf, "u": u, "indices": indices},
        steps=[LaunchStep(global_size=num_particles,
                          scalars={"n": num_particles})],
        check=check,
        category="divergent",
        description="particle-filter systematic resampling (Rodinia)",
    )
