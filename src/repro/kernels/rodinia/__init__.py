"""Rodinia-suite divergent workloads (paper Figure 12 subjects)."""

from .bfs import bfs
from .hotspot import hotspot
from .lavamd import lavamd
from .nw import nw
from .particlefilter import particlefilter

__all__ = ["bfs", "hotspot", "lavamd", "nw", "particlefilter"]
