"""LavaMD: particle interactions with a cutoff branch (Rodinia).

Every particle accumulates forces from a candidate neighbour list; the
cutoff test inside the loop turns lanes off irregularly.  In the paper
(Figure 12) lavaMD shows EU-cycle savings that do not translate into
total-time savings — even a perfect L3 does not help — because its
execution is dominated by workload imbalance and latency, which this
kernel reproduces via skewed per-particle neighbour counts.
"""

from __future__ import annotations

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.registers import FlagRef
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload


def _build_program(simd_width: int):
    b = KernelBuilder("lavamd", simd_width)
    gid = b.global_id()
    s_px = b.surface_arg("px")
    s_py = b.surface_arg("py")
    s_pz = b.surface_arg("pz")
    s_nb = b.surface_arg("neighbors")
    s_cnt = b.surface_arg("counts")
    s_f = b.surface_arg("force")
    max_nb = b.scalar_arg("max_nb", DType.I32)
    cutoff2 = b.scalar_arg("cutoff2", DType.F32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    z = b.vreg(DType.F32)
    b.load(x, addr, s_px)
    b.load(y, addr, s_py)
    b.load(z, addr, s_pz)
    count = b.vreg(DType.I32)
    b.load(count, addr, s_cnt)

    force = b.vreg(DType.F32)
    b.mov(force, 0.0)
    k = b.vreg(DType.I32)
    b.mov(k, 0)
    base = b.vreg(DType.I32)
    b.mul(base, gid, max_nb)

    has_any = b.cmp(CmpOp.GT, count, 0)
    with b.if_(has_any):
        idx = b.vreg(DType.I32)
        nb = b.vreg(DType.I32)
        nb_addr = b.vreg(DType.I32)
        ox = b.vreg(DType.F32)
        oy = b.vreg(DType.F32)
        oz = b.vreg(DType.F32)
        dx = b.vreg(DType.F32)
        dy = b.vreg(DType.F32)
        dz = b.vreg(DType.F32)
        r2 = b.vreg(DType.F32)
        contrib = b.vreg(DType.F32)
        b.do_()
        b.add(idx, base, k)
        b.shl(idx, idx, 2)
        b.load(nb, idx, s_nb)
        b.shl(nb_addr, nb, 2)
        b.load(ox, nb_addr, s_px)
        b.load(oy, nb_addr, s_py)
        b.load(oz, nb_addr, s_pz)
        b.sub(dx, x, ox)
        b.sub(dy, y, oy)
        b.sub(dz, z, oz)
        b.mul(r2, dx, dx)
        b.mad(r2, dy, dy, r2)
        b.mad(r2, dz, dz, r2)
        near = b.cmp(CmpOp.LT, r2, cutoff2)
        with b.if_(near):
            # contrib = exp(-2 r2) / sqrt(r2 + 0.25): short-range kernel
            b.mul(contrib, r2, -2.0)
            b.exp(contrib, contrib)
            denom = dx  # reuse
            b.add(denom, r2, 0.25)
            b.sqrt(denom, denom)
            b.div(contrib, contrib, denom)
            b.add(force, force, contrib)
        b.add(k, k, 1)
        more = b.cmp(CmpOp.LT, k, count, flag=FlagRef(1))
        b.while_(more)
    b.store(force, addr, s_f)
    return b.finish()


def lavamd(num_particles: int = 512, max_neighbors: int = 24,
           simd_width: int = 16, seed: int = 32) -> Workload:
    """Cutoff-bounded particle force accumulation over neighbour lists."""
    program = _build_program(simd_width)
    rng = np.random.default_rng(seed)
    px = rng.uniform(0, 4, num_particles).astype(np.float32)
    py = rng.uniform(0, 4, num_particles).astype(np.float32)
    pz = rng.uniform(0, 4, num_particles).astype(np.float32)
    # Skewed neighbour counts: a minority of particles do most work.
    counts = np.minimum(
        rng.geometric(0.12, num_particles), max_neighbors
    ).astype(np.int32)
    neighbors = rng.integers(0, num_particles,
                             (num_particles, max_neighbors)).astype(np.int32)
    force = np.zeros(num_particles, dtype=np.float32)
    cutoff2 = 1.5

    def check(buffers):
        expected = np.zeros(num_particles, dtype=np.float64)
        for i in range(num_particles):
            for k in range(counts[i]):
                j = neighbors[i, k]
                dx, dy, dz = px[i] - px[j], py[i] - py[j], pz[i] - pz[j]
                r2 = float(dx * dx + dy * dy + dz * dz)
                if r2 < cutoff2:
                    expected[i] += np.exp(-2.0 * r2) / np.sqrt(r2 + 0.25)
        np.testing.assert_allclose(buffers["force"], expected, rtol=1e-3, atol=1e-4)

    return Workload(
        name="lavamd",
        program=program,
        buffers={
            "px": px, "py": py, "pz": pz,
            "neighbors": neighbors.reshape(-1), "counts": counts, "force": force,
        },
        steps=[LaunchStep(global_size=num_particles,
                          scalars={"max_nb": max_neighbors, "cutoff2": cutoff2})],
        check=check,
        category="divergent",
        description="particle force loop with cutoff divergence (Rodinia lavaMD)",
    )
