"""BFS: level-synchronous breadth-first search (Rodinia).

The paper's most memory-bound divergent workload (Figure 12: no total-
time benefit even though EU cycles shrink, because memory stalls
dominate).  Each work-item owns a node; only frontier nodes do work
(heavy control divergence), and edge gathers hit random cache lines
(heavy memory divergence).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.registers import FlagRef
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload


def _build_program(simd_width: int):
    b = KernelBuilder("bfs", simd_width)
    gid = b.global_id()
    s_rowptr = b.surface_arg("row_ptr")
    s_cols = b.surface_arg("cols")
    s_levels = b.surface_arg("levels")
    s_changed = b.surface_arg("changed")
    cur_level = b.scalar_arg("level", DType.I32)

    my_addr = b.vreg(DType.I32)
    b.shl(my_addr, gid, 2)
    my_level = b.vreg(DType.I32)
    b.load(my_level, my_addr, s_levels)
    in_frontier = b.cmp(CmpOp.EQ, my_level, cur_level)
    with b.if_(in_frontier):
        edge = b.vreg(DType.I32)
        end = b.vreg(DType.I32)
        tmp = b.vreg(DType.I32)
        b.load(edge, my_addr, s_rowptr)  # row_ptr[gid]
        b.add(tmp, my_addr, 4)
        b.load(end, tmp, s_rowptr)  # row_ptr[gid + 1]
        has_edges = b.cmp(CmpOp.LT, edge, end)
        with b.if_(has_edges):
            nb = b.vreg(DType.I32)
            nb_addr = b.vreg(DType.I32)
            nb_level = b.vreg(DType.I32)
            next_level = b.vreg(DType.I32)
            b.add(next_level, cur_level, 1)
            one = b.vreg(DType.I32)
            b.mov(one, 1)
            zero_addr = b.vreg(DType.I32)
            b.mov(zero_addr, 0)
            b.do_()
            b.shl(tmp, edge, 2)
            b.load(nb, tmp, s_cols)
            b.shl(nb_addr, nb, 2)
            b.load(nb_level, nb_addr, s_levels)
            unvisited = b.cmp(CmpOp.LT, nb_level, 0)
            b.store(next_level, nb_addr, s_levels, pred=unvisited)
            b.store(one, zero_addr, s_changed, pred=unvisited)
            b.add(edge, edge, 1)
            more = b.cmp(CmpOp.LT, edge, end, flag=FlagRef(1))
            b.while_(more)
    return b.finish()


def _random_graph(num_nodes: int, avg_degree: int, seed: int):
    """Random graph with skewed degrees (a few hubs, many leaves)."""
    rng = np.random.default_rng(seed)
    # Zipf-ish extra degrees clipped, plus a guaranteed ring edge so the
    # graph is connected and BFS explores every level.
    raw = np.clip(rng.zipf(1.7, num_nodes), 1, 8 * avg_degree)
    extra = (raw * (avg_degree * num_nodes / max(1, raw.sum()))).astype(np.int32)
    degrees = extra + 1
    row_ptr = np.zeros(num_nodes + 1, dtype=np.int32)
    row_ptr[1:] = np.cumsum(degrees)
    num_edges = int(row_ptr[-1])
    cols = rng.integers(0, num_nodes, num_edges).astype(np.int32)
    # First edge of node i is the ring successor i+1.
    cols[row_ptr[:-1]] = (np.arange(num_nodes) + 1) % num_nodes
    return row_ptr, cols


def _host_bfs(row_ptr: np.ndarray, cols: np.ndarray, source: int) -> np.ndarray:
    num_nodes = row_ptr.shape[0] - 1
    levels = np.full(num_nodes, -1, dtype=np.int32)
    levels[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = []
        for node in frontier:
            for e in range(row_ptr[node], row_ptr[node + 1]):
                nb = cols[e]
                if levels[nb] < 0:
                    levels[nb] = level + 1
                    nxt.append(nb)
        frontier = nxt
        level += 1
    return levels


def bfs(num_nodes: int = 1024, avg_degree: int = 6, simd_width: int = 16,
        seed: int = 30) -> Workload:
    """Level-synchronous BFS from node 0 over a random skewed graph."""
    program = _build_program(simd_width)
    row_ptr, cols = _random_graph(num_nodes, avg_degree, seed)
    levels = np.full(num_nodes, -1, dtype=np.int32)
    levels[0] = 0
    changed = np.zeros(1, dtype=np.int32)
    expected = _host_bfs(row_ptr, cols, 0)

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index > 0 and buffers["changed"][0] == 0:
            return None
        buffers["changed"][0] = 0
        return LaunchStep(global_size=num_nodes, scalars={"level": index})

    def check(buffers):
        np.testing.assert_array_equal(buffers["levels"], expected)

    return Workload(
        name="bfs",
        program=program,
        buffers={"row_ptr": row_ptr, "cols": cols, "levels": levels, "changed": changed},
        steps=steps,
        check=check,
        category="divergent",
        description="level-synchronous breadth-first search (Rodinia)",
        max_steps=num_nodes + 2,
        # Threads of one launch race benignly on `levels`: a neighbour
        # marked by an earlier-scheduled thread is no longer "unvisited"
        # for later ones, so store predicates (and hence mask statistics)
        # depend on the policy's cycle interleaving.  The final levels
        # array is unaffected — every racing write stores level + 1.
        mask_deterministic=False,
    )
