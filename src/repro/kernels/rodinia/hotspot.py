"""HotSpot: thermal stencil with boundary divergence (Rodinia).

A 2-D Jacobi update where boundary cells clamp their missing neighbours;
warps that straddle a grid edge diverge on the boundary conditionals
while interior warps stay coherent — the paper classifies hotspot as
divergent with moderate compaction benefit (Figures 10/12).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload


def _build_program(simd_width: int):
    b = KernelBuilder("hotspot", simd_width)
    gid = b.global_id()
    s_tin = b.surface_arg("t_in")
    s_tout = b.surface_arg("t_out")
    s_power = b.surface_arg("power")
    dim = b.scalar_arg("dim", DType.I32)

    row = b.vreg(DType.I32)
    col = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(row, gid, dim)
    b.mul(tmp, row, dim)
    b.sub(col, gid, tmp)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    center = b.vreg(DType.F32)
    b.load(center, addr, s_tin)
    power = b.vreg(DType.F32)
    b.load(power, addr, s_power)

    naddr = b.vreg(DType.I32)
    acc = b.vreg(DType.F32)
    b.mov(acc, 0.0)
    neighbor = b.vreg(DType.F32)
    last = b.vreg(DType.I32)
    b.sub(last, dim, 1)

    # North: rows > 0 read up, boundary rows reuse the centre value.
    f = b.cmp(CmpOp.GT, row, 0)
    with b.if_(f):
        b.sub(naddr, gid, dim)
        b.shl(naddr, naddr, 2)
        b.load(neighbor, naddr, s_tin)
        b.else_()
        b.mov(neighbor, center)
    b.add(acc, acc, neighbor)
    # South
    f = b.cmp(CmpOp.LT, row, last)
    with b.if_(f):
        b.add(naddr, gid, dim)
        b.shl(naddr, naddr, 2)
        b.load(neighbor, naddr, s_tin)
        b.else_()
        b.mov(neighbor, center)
    b.add(acc, acc, neighbor)
    # West
    f = b.cmp(CmpOp.GT, col, 0)
    with b.if_(f):
        b.sub(naddr, gid, 1)
        b.shl(naddr, naddr, 2)
        b.load(neighbor, naddr, s_tin)
        b.else_()
        b.mov(neighbor, center)
    b.add(acc, acc, neighbor)
    # East
    f = b.cmp(CmpOp.LT, col, last)
    with b.if_(f):
        b.add(naddr, gid, 1)
        b.shl(naddr, naddr, 2)
        b.load(neighbor, naddr, s_tin)
        b.else_()
        b.mov(neighbor, center)
    b.add(acc, acc, neighbor)

    # t_out = center + k*(acc - 4*center) + c*power
    delta = b.vreg(DType.F32)
    b.mad(delta, center, -4.0, acc)
    out = b.vreg(DType.F32)
    b.mad(out, delta, 0.2, center)
    b.mad(out, power, 0.05, out)
    # Hot cells take a nonlinear radiative-correction path (the thermal
    # solver's clamp); which lanes take it is data dependent, so interior
    # warps diverge too, not only the boundary ones.
    f_hot = b.cmp(CmpOp.GT, out, 65.0)
    with b.if_(f_hot):
        excess = b.vreg(DType.F32)
        b.sub(excess, out, 65.0)
        b.mul(excess, excess, 0.02)
        radiated = b.vreg(DType.F32)
        b.exp(radiated, excess)
        b.log(radiated, radiated)  # ln(exp(x)) = x: models the solver's
        b.sqrt(excess, excess)     # iterative radiative evaluation cost
        b.mul(excess, excess, 0.4)
        b.mad(excess, radiated, 2.0, excess)
        b.sub(out, out, excess)
    b.store(out, addr, s_tout)
    return b.finish()


def _host_step(t: np.ndarray, power: np.ndarray) -> np.ndarray:
    f32 = np.float32
    padded = np.pad(t, 1, mode="edge")
    acc = (padded[:-2, 1:-1] + padded[2:, 1:-1]
           + padded[1:-1, :-2] + padded[1:-1, 2:])
    out = (t + f32(0.2) * (acc - 4 * t) + f32(0.05) * power).astype(np.float32)
    hot = out > f32(65.0)
    with np.errstate(all="ignore"):
        x = ((out - f32(65.0)) * f32(0.02)).astype(np.float32)
        radiated = np.log(np.exp(x)).astype(np.float32)
        excess = (np.sqrt(np.maximum(x, 0)) * f32(0.4)
                  + radiated * f32(2.0)).astype(np.float32)
    return np.where(hot, (out - excess).astype(np.float32), out)


def hotspot(dim: int = 48, iterations: int = 4, simd_width: int = 16,
            seed: int = 31) -> Workload:
    """*iterations* Jacobi steps over a dim x dim thermal grid."""
    program = _build_program(simd_width)
    rng = np.random.default_rng(seed)
    t0 = rng.uniform(40.0, 90.0, (dim, dim)).astype(np.float32)
    power = rng.uniform(0.0, 5.0, (dim, dim)).astype(np.float32)
    t_in = t0.reshape(-1).copy()
    t_out = np.zeros(dim * dim, dtype=np.float32)

    expected = t0.copy()
    for _ in range(iterations):
        expected = _host_step(expected, power)

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= iterations:
            return None
        if index > 0:
            buffers["t_in"][:] = buffers["t_out"]  # host-side ping-pong
        return LaunchStep(global_size=dim * dim, scalars={"dim": dim})

    def check(buffers):
        np.testing.assert_allclose(
            buffers["t_out"].reshape(dim, dim), expected, rtol=1e-4, atol=1e-3
        )

    return Workload(
        name="hotspot",
        program=program,
        buffers={"t_in": t_in, "t_out": t_out, "power": power.reshape(-1)},
        steps=steps,
        check=check,
        category="divergent",
        description="thermal stencil with boundary-condition divergence (Rodinia)",
        max_steps=iterations + 1,
    )
