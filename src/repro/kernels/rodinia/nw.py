"""Needleman-Wunsch: wavefront dynamic programming (Rodinia).

The scoring matrix fills along anti-diagonals; one kernel launch scores
one diagonal.  The three-way max is written with explicit branches (as
in the Rodinia OpenCL kernel), so lanes diverge on which predecessor
wins — and short diagonals leave most of the last warp masked off,
giving the dispatch-mask divergence BCC also harvests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...isa.builder import KernelBuilder
from ...isa.types import CmpOp, DType
from ..workload import LaunchStep, Workload


def _build_program(simd_width: int):
    b = KernelBuilder("nw", simd_width)
    gid = b.global_id()
    s_score = b.surface_arg("score")
    s_ref = b.surface_arg("reference")
    diag = b.scalar_arg("diag", DType.I32)
    dim = b.scalar_arg("dim", DType.I32)
    penalty = b.scalar_arg("penalty", DType.I32)

    # Cell (i, j) on anti-diagonal d: i = 1 + gid_clamped, j = d - i.
    i = b.vreg(DType.I32)
    j = b.vreg(DType.I32)
    b.add(i, gid, 1)
    b.sub(j, diag, i)

    # Guard lanes that fall off the matrix for this diagonal.  Each CMP
    # result is latched into a GRF register before the next CMP reuses f0.
    valid_i = b.vreg(DType.I32)
    valid_j = b.vreg(DType.I32)
    f = b.cmp(CmpOp.LT, i, dim)
    b.sel(valid_i, f, 1, 0)
    f = b.cmp(CmpOp.GE, j, 1)
    b.sel(valid_j, f, 1, 0)
    b.and_(valid_i, valid_i, valid_j)
    f = b.cmp(CmpOp.LT, j, dim)
    b.sel(valid_j, f, 1, 0)
    b.and_(valid_i, valid_i, valid_j)
    valid = b.cmp(CmpOp.NE, valid_i, 0)
    with b.if_(valid):
        idx = b.vreg(DType.I32)
        addr = b.vreg(DType.I32)
        nw_v = b.vreg(DType.I32)
        up_v = b.vreg(DType.I32)
        left_v = b.vreg(DType.I32)
        ref_v = b.vreg(DType.I32)
        b.mad(idx, i, dim, j)
        # score[i-1, j-1] + ref[i, j]
        b.sub(addr, idx, dim)
        b.sub(addr, addr, 1)
        b.shl(addr, addr, 2)
        b.load(nw_v, addr, s_score)
        b.shl(addr, idx, 2)
        b.load(ref_v, addr, s_ref)
        b.add(nw_v, nw_v, ref_v)
        # score[i-1, j] - penalty
        b.sub(addr, idx, dim)
        b.shl(addr, addr, 2)
        b.load(up_v, addr, s_score)
        b.sub(up_v, up_v, penalty)
        # score[i, j-1] - penalty
        b.sub(addr, idx, 1)
        b.shl(addr, addr, 2)
        b.load(left_v, addr, s_score)
        b.sub(left_v, left_v, penalty)
        # Branchy three-way max (divergent, as in the Rodinia kernel).
        best = b.vreg(DType.I32)
        b.mov(best, nw_v)
        f = b.cmp(CmpOp.GT, up_v, best)
        with b.if_(f):
            b.mov(best, up_v)
        f = b.cmp(CmpOp.GT, left_v, best)
        with b.if_(f):
            b.mov(best, left_v)
        b.shl(addr, idx, 2)
        b.store(best, addr, s_score)
    return b.finish()


def _host_nw(reference: np.ndarray, dim: int, penalty: int) -> np.ndarray:
    score = np.zeros((dim, dim), dtype=np.int32)
    score[0, :] = -penalty * np.arange(dim)
    score[:, 0] = -penalty * np.arange(dim)
    for i in range(1, dim):
        for j in range(1, dim):
            score[i, j] = max(
                score[i - 1, j - 1] + reference[i, j],
                score[i - 1, j] - penalty,
                score[i, j - 1] - penalty,
            )
    return score


def nw(dim: int = 48, penalty: int = 10, simd_width: int = 16,
       seed: int = 33) -> Workload:
    """Score-matrix fill for sequences of length dim-1."""
    program = _build_program(simd_width)
    rng = np.random.default_rng(seed)
    reference = rng.integers(-6, 7, (dim, dim)).astype(np.int32)
    score = np.zeros((dim, dim), dtype=np.int32)
    score[0, :] = -penalty * np.arange(dim)
    score[:, 0] = -penalty * np.arange(dim)
    expected = _host_nw(reference, dim, penalty)
    num_diags = 2 * dim - 3  # anti-diagonals d = 2 .. 2*dim-2

    def steps(buffers: Dict[str, np.ndarray], index: int) -> Optional[LaunchStep]:
        if index >= num_diags:
            return None
        d = index + 2
        # Launch every i in [1, d-1]; the kernel masks off-matrix lanes.
        return LaunchStep(
            global_size=d - 1,
            scalars={"diag": d, "dim": dim, "penalty": penalty},
        )

    def check(buffers):
        np.testing.assert_array_equal(buffers["score"].reshape(dim, dim), expected)

    return Workload(
        name="nw",
        program=program,
        buffers={"score": score.reshape(-1), "reference": reference.reshape(-1)},
        steps=steps,
        check=check,
        category="divergent",
        description="Needleman-Wunsch wavefront DP (Rodinia)",
        max_steps=num_diags + 1,
    )
