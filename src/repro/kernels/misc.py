"""Remaining Table 1 workload stand-ins: Kmeans, EV, ScLA, MT, KNN.

* k-means assignment: per-point loop over centroids with a branchy
  running-min update (mild divergence).
* Eigenvalue (EV): Sturm-sequence bisection per eigenvalue index, with
  the classic pivot-guard branch inside the count loop (divergent).
* Scan-large-array (ScLA): SLM tree reduction with barriers; lanes drop
  out as the stride shrinks below the SIMD width (divergent tail).
* Mersenne-twister-like RNG (MT): pure bit mixing, fully coherent.
* k-nearest-neighbours (KNN): distance + branchy running minimum.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import KernelBuilder
from ..isa.registers import FlagRef
from ..isa.types import CmpOp, DType
from .workload import LaunchStep, Workload


def kmeans_assign(num_points: int = 1024, num_clusters: int = 8,
                  simd_width: int = 16, seed: int = 50) -> Workload:
    """Assign each 2-D point to its nearest centroid (branchy argmin)."""
    b = KernelBuilder("kmeans", simd_width)
    gid = b.global_id()
    s_px, s_py = b.surface_arg("px"), b.surface_arg("py")
    s_cx, s_cy = b.surface_arg("cx"), b.surface_arg("cy")
    s_assign = b.surface_arg("assign")
    k = b.scalar_arg("k", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    b.load(x, addr, s_px)
    b.load(y, addr, s_py)
    best = b.vreg(DType.F32)
    b.mov(best, 1e30)
    best_id = b.vreg(DType.I32)
    b.mov(best_id, -1)
    j = b.vreg(DType.I32)
    b.mov(j, 0)
    caddr = b.vreg(DType.I32)
    cx = b.vreg(DType.F32)
    cy = b.vreg(DType.F32)
    d = b.vreg(DType.F32)
    dy = b.vreg(DType.F32)
    b.do_()
    b.shl(caddr, j, 2)
    b.load(cx, caddr, s_cx)
    b.load(cy, caddr, s_cy)
    b.sub(cx, x, cx)
    b.sub(dy, y, cy)
    b.mul(d, cx, cx)
    b.mad(d, dy, dy, d)
    closer = b.cmp(CmpOp.LT, d, best)
    with b.if_(closer):
        b.mov(best, d)
        b.mov(best_id, j)
    b.add(j, j, 1)
    more = b.cmp(CmpOp.LT, j, k, flag=FlagRef(1))
    b.while_(more)
    b.store(best_id, addr, s_assign)
    program = b.finish()

    rng = np.random.default_rng(seed)
    px = rng.standard_normal(num_points).astype(np.float32)
    py = rng.standard_normal(num_points).astype(np.float32)
    cx = rng.standard_normal(num_clusters).astype(np.float32)
    cy = rng.standard_normal(num_clusters).astype(np.float32)
    assign = np.zeros(num_points, dtype=np.int32)

    def check(buffers):
        d = ((px[:, None] - cx[None, :]) ** 2
             + (py[:, None] - cy[None, :]) ** 2)
        np.testing.assert_array_equal(buffers["assign"], d.argmin(axis=1))

    return Workload(
        name="kmeans",
        program=program,
        buffers={"px": px, "py": py, "cx": cx, "cy": cy, "assign": assign},
        steps=[LaunchStep(global_size=num_points, scalars={"k": num_clusters})],
        check=check,
        category="divergent",
        description="k-means nearest-centroid assignment",
    )


def eigenvalue(matrix_dim: int = 12, bisect_iters: int = 20,
               simd_width: int = 16, seed: int = 51) -> Workload:
    """EV: k-th eigenvalue of a symmetric tridiagonal matrix by bisection.

    Work-item *i* bisects for eigenvalue index ``i % matrix_dim``.  The
    Sturm count loop carries a divide-guard branch whose taken lanes
    depend on the pivot value — genuine data-dependent divergence.
    """
    b = KernelBuilder("eigenvalue", simd_width)
    gid = b.global_id()
    s_d, s_e = b.surface_arg("diag"), b.surface_arg("offdiag")
    s_out = b.surface_arg("eig")
    m = b.scalar_arg("m", DType.I32)
    lo0 = b.scalar_arg("lo", DType.F32)
    hi0 = b.scalar_arg("hi", DType.F32)

    k_idx = b.vreg(DType.I32)
    tmp = b.vreg(DType.I32)
    b.div(tmp, gid, m)
    b.mul(tmp, tmp, m)
    b.sub(k_idx, gid, tmp)

    lo = b.vreg(DType.F32)
    hi = b.vreg(DType.F32)
    b.mov(lo, lo0)
    b.mov(hi, hi0)
    it = b.vreg(DType.I32)
    b.mov(it, 0)
    mid = b.vreg(DType.F32)
    count = b.vreg(DType.I32)
    i = b.vreg(DType.I32)
    q = b.vreg(DType.F32)
    dv = b.vreg(DType.F32)
    ev = b.vreg(DType.F32)
    iaddr = b.vreg(DType.I32)

    b.do_()
    b.add(mid, lo, hi)
    b.mul(mid, mid, 0.5)
    # Sturm sequence: count eigenvalues < mid.
    b.mov(count, 0)
    b.mov(i, 0)
    b.mov(q, 1.0)
    b.do_()
    b.shl(iaddr, i, 2)
    b.load(dv, iaddr, s_d)
    b.load(ev, iaddr, s_e)
    # q = d[i] - mid - e[i]^2 / q   (with pivot guard)
    absq = b.vreg(DType.F32)
    b.abs_(absq, q)
    guard = b.cmp(CmpOp.LT, absq, 1e-6)
    with b.if_(guard):
        b.mov(q, 1e-6)
    e2 = b.vreg(DType.F32)
    b.mul(e2, ev, ev)
    b.div(e2, e2, q)
    b.sub(q, dv, mid)
    b.sub(q, q, e2)
    neg = b.cmp(CmpOp.LT, q, 0.0)
    b.add(count, count, 1, pred=neg)
    b.add(i, i, 1)
    inner_more = b.cmp(CmpOp.LT, i, m, flag=FlagRef(1))
    b.while_(inner_more)
    # Bisect: count <= k -> eigenvalue k is above mid.
    f_up = b.cmp(CmpOp.LE, count, k_idx)
    b.sel(lo, f_up, mid, lo)
    nf = ~f_up
    b.sel(hi, nf, mid, hi)
    b.add(it, it, 1)
    outer_more = b.cmp(CmpOp.LT, it, bisect_iters, flag=FlagRef(1))
    b.while_(outer_more)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    result = b.vreg(DType.F32)
    b.add(result, lo, hi)
    b.mul(result, result, 0.5)
    b.store(result, addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    diag = rng.uniform(-2, 2, matrix_dim).astype(np.float32)
    offdiag = np.concatenate(
        [[0.0], rng.uniform(-1, 1, matrix_dim - 1)]
    ).astype(np.float32)
    n = max(simd_width * 8, matrix_dim * 4)
    eig = np.zeros(n, dtype=np.float32)
    matrix = np.diag(diag.astype(np.float64))
    for i in range(1, matrix_dim):
        matrix[i, i - 1] = matrix[i - 1, i] = offdiag[i]
    true_eigs = np.linalg.eigvalsh(matrix)
    lo_bound = float(true_eigs.min() - 1.0)
    hi_bound = float(true_eigs.max() + 1.0)

    def check(buffers):
        got = buffers["eig"]
        expected = true_eigs[np.arange(n) % matrix_dim]
        tol = (hi_bound - lo_bound) / 2 ** bisect_iters * 4 + 1e-3
        np.testing.assert_allclose(got, expected, atol=tol)

    return Workload(
        name="eigenvalue",
        program=program,
        buffers={"diag": diag, "offdiag": offdiag, "eig": eig},
        steps=[LaunchStep(global_size=n,
                          scalars={"m": matrix_dim, "lo": lo_bound, "hi": hi_bound})],
        check=check,
        category="divergent",
        description="tridiagonal eigenvalue bisection (Sturm counts)",
    )


def scan_reduce(n: int = 1024, local_size: int = 64, simd_width: int = 16,
                seed: int = 52) -> Workload:
    """ScLA: SLM tree reduction per workgroup, with a divergent tail."""
    if local_size % simd_width != 0 or local_size & (local_size - 1):
        raise ValueError("local_size must be a power of two multiple of SIMD width")
    b = KernelBuilder("scla", simd_width, slm_bytes=local_size * 4)
    gid = b.global_id()
    lid = b.local_id()
    s_in, s_out = b.surface_arg("inp"), b.surface_arg("partial")
    wg_size = b.scalar_arg("wg", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    x = b.vreg(DType.F32)
    b.load(x, addr, s_in)
    slm_addr = b.vreg(DType.I32)
    b.shl(slm_addr, lid, 2)
    b.store_slm(x, slm_addr)
    b.barrier()

    stride = b.vreg(DType.I32)
    b.shr(stride, wg_size, 1)
    a = b.vreg(DType.F32)
    c = b.vreg(DType.F32)
    other = b.vreg(DType.I32)
    b.do_()
    f_active = b.cmp(CmpOp.LT, lid, stride)
    with b.if_(f_active):
        b.load_slm(a, slm_addr)
        b.add(other, lid, stride)
        b.shl(other, other, 2)
        b.load_slm(c, other)
        b.add(a, a, c)
        b.store_slm(a, slm_addr)
    b.barrier()
    b.shr(stride, stride, 1)
    more = b.cmp(CmpOp.GT, stride, 0, flag=FlagRef(1))
    b.while_(more)

    f_first = b.cmp(CmpOp.EQ, lid, 0)
    with b.if_(f_first):
        wg_id = b.vreg(DType.I32)
        b.div(wg_id, gid, wg_size)
        out_addr = b.vreg(DType.I32)
        b.shl(out_addr, wg_id, 2)
        total = b.vreg(DType.F32)
        zero = b.vreg(DType.I32)
        b.mov(zero, 0)
        b.load_slm(total, zero)
        b.store(total, out_addr, s_out)
    program = b.finish()

    rng = np.random.default_rng(seed)
    inp = rng.uniform(-1, 1, n).astype(np.float32)
    partial = np.zeros(n // local_size, dtype=np.float32)

    def check(buffers):
        expected = inp.reshape(-1, local_size).sum(axis=1, dtype=np.float64)
        np.testing.assert_allclose(buffers["partial"], expected, rtol=1e-4,
                                   atol=1e-4)

    return Workload(
        name="scla",
        program=program,
        buffers={"inp": inp, "partial": partial},
        steps=[LaunchStep(global_size=n, local_size=local_size,
                          scalars={"wg": local_size})],
        check=check,
        category="divergent",
        description="SLM tree reduction with barriers (scan large array)",
    )


def mersenne_mix(n: int = 1024, rounds: int = 16, simd_width: int = 16) -> Workload:
    """MT: xorshift-style tempering rounds; fully coherent bit mixing."""
    b = KernelBuilder("mt", simd_width)
    gid = b.global_id()
    s_out = b.surface_arg("out")
    state = b.vreg(DType.I32)
    b.mad(state, gid, 69069, 362437)
    t = b.vreg(DType.I32)
    for _ in range(rounds):
        b.shl(t, state, 13)
        b.xor(state, state, t)
        b.shr(t, state, 17)
        b.and_(t, t, 0x7FFF)  # logical-shift emulation for the high bits
        b.xor(state, state, t)
        b.shl(t, state, 5)
        b.xor(state, state, t)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    b.store(state, addr, s_out)
    program = b.finish()

    out = np.zeros(n, dtype=np.int32)

    def check(buffers):
        state = (np.arange(n, dtype=np.int64) * 69069 + 362437) & 0xFFFFFFFF
        state = np.where(state >= 2**31, state - 2**32, state)
        for _ in range(rounds):
            state = _i32(state ^ _i32(state << 13))
            t = (state >> 17) & 0x7FFF
            state = _i32(state ^ t)
            state = _i32(state ^ _i32(state << 5))
        np.testing.assert_array_equal(buffers["out"], state.astype(np.int32))

    return Workload(
        name="mt",
        program=program,
        buffers={"out": out},
        steps=[LaunchStep(global_size=n)],
        check=check,
        category="coherent",
        description="xorshift bit-mixing RNG (Mersenne-twister stand-in)",
    )


def _i32(x):
    """Wrap an int64 numpy array to int32 two's-complement range."""
    x = x & 0xFFFFFFFF
    return np.where(x >= 2**31, x - 2**32, x)


def knn(num_points: int = 256, num_queries: int = 128, simd_width: int = 16,
        seed: int = 53) -> Workload:
    """KNN: nearest neighbour per query via branchy running minimum."""
    b = KernelBuilder("knn", simd_width)
    gid = b.global_id()
    s_qx, s_qy = b.surface_arg("qx"), b.surface_arg("qy")
    s_px, s_py = b.surface_arg("px"), b.surface_arg("py")
    s_nn = b.surface_arg("nn")
    npts = b.scalar_arg("npts", DType.I32)

    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)
    qx = b.vreg(DType.F32)
    qy = b.vreg(DType.F32)
    b.load(qx, addr, s_qx)
    b.load(qy, addr, s_qy)
    best = b.vreg(DType.F32)
    b.mov(best, 1e30)
    best_id = b.vreg(DType.I32)
    b.mov(best_id, -1)
    j = b.vreg(DType.I32)
    b.mov(j, 0)
    paddr = b.vreg(DType.I32)
    x = b.vreg(DType.F32)
    y = b.vreg(DType.F32)
    d = b.vreg(DType.F32)
    b.do_()
    b.shl(paddr, j, 2)
    b.load(x, paddr, s_px)
    b.load(y, paddr, s_py)
    b.sub(x, qx, x)
    b.sub(y, qy, y)
    b.mul(d, x, x)
    b.mad(d, y, y, d)
    closer = b.cmp(CmpOp.LT, d, best)
    with b.if_(closer):
        b.mov(best, d)
        b.mov(best_id, j)
    b.add(j, j, 1)
    more = b.cmp(CmpOp.LT, j, npts, flag=FlagRef(1))
    b.while_(more)
    b.store(best_id, addr, s_nn)
    program = b.finish()

    rng = np.random.default_rng(seed)
    px = rng.standard_normal(num_points).astype(np.float32)
    py = rng.standard_normal(num_points).astype(np.float32)
    qx = rng.standard_normal(num_queries).astype(np.float32)
    qy = rng.standard_normal(num_queries).astype(np.float32)
    nn = np.zeros(num_queries, dtype=np.int32)

    def check(buffers):
        d = ((qx[:, None] - px[None, :]) ** 2
             + (qy[:, None] - py[None, :]) ** 2)
        np.testing.assert_array_equal(buffers["nn"], d.argmin(axis=1))

    return Workload(
        name="knn",
        program=program,
        buffers={"qx": qx, "qy": qy, "px": px, "py": py, "nn": nn},
        steps=[LaunchStep(global_size=num_queries, scalars={"npts": num_points})],
        check=check,
        category="divergent",
        description="nearest neighbour search with branchy minimum",
    )
