"""Paper Section 4.3: register-file area comparison.

Renders the area-model estimates for the four organizations the paper
discusses: baseline, BCC (half-register rows, ~+10 %), SCC (wider but
shorter), and the 8-banked per-lane-addressable file inter-warp
techniques require (> +40 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table
from ..area.regfile import (
    RegFileConfig,
    area,
    baseline_grf,
    bcc_grf,
    interwarp_grf,
    overhead_pct,
    scc_grf,
)


@dataclass
class AreaRow:
    config: RegFileConfig
    area: float
    overhead_pct: float


def area_data() -> List[AreaRow]:
    """Area estimates for the four Figure 5 / Section 4.3 organizations."""
    rows = []
    for config in (baseline_grf(), bcc_grf(), scc_grf(), interwarp_grf()):
        rows.append(AreaRow(config=config, area=area(config),
                            overhead_pct=overhead_pct(config)))
    return rows


def render(rows: List[AreaRow]) -> str:
    table_rows = [
        [r.config.name,
         f"{r.config.bits_per_row}b x {r.config.num_rows} x {r.config.banks} bank(s)",
         f"{r.area:.0f}",
         f"{r.overhead_pct:+.1f}%"]
        for r in rows
    ]
    return format_table(
        ["organization", "geometry", "area (a.u.)", "overhead vs baseline"],
        table_rows,
        title="Register-file area (Section 4.3, CACTI substitute)",
    )
