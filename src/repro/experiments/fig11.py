"""Paper Figure 11: ray tracing — total-time vs EU-cycle reduction, DC1/DC2.

For each ray-tracing workload the paper stacks: the total-execution-time
reduction of BCC/SCC at data-cluster bandwidth of one line per cycle
(DC1), the same at two lines per cycle (DC2), and the EU-cycle reduction
for comparison; the secondary axis shows achieved data-cluster
throughput.  The reproduced shape: under DC1 the memory port eats most
of the EU-cycle benefit, while DC2 recovers ~90 % of it, and measured
throughput demand sits between one and two lines per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy
from ..gpu.config import GpuConfig
from ..gpu.results import total_time_reduction_pct
from ..kernels.raytracing import ambient_occlusion, primary_rays
from ..kernels.workload import Workload
from ..runner import Job, default_runner

#: Factories for the paper's nine Figure 11 bars (scene x kind x width).
def default_rt_workloads(width_px_pr: int = 32, width_px_ao: int = 24,
                         ao_samples: int = 3) -> Dict[str, Callable[[], Workload]]:
    """The RT-PR and RT-AO workload set of Figure 11."""
    factories: Dict[str, Callable[[], Workload]] = {}
    for scene in ("al", "bl", "wm"):
        factories[f"RT-PR-{scene.upper()}"] = (
            lambda s=scene: primary_rays(s, width_px=width_px_pr))
    for width in (8, 16):
        for scene in ("al", "bl", "wm"):
            factories[f"RT-AO-{scene.upper()}{width}"] = (
                lambda s=scene, w=width: ambient_occlusion(
                    s, width_px=width_px_ao, simd_width=w, ao_samples=ao_samples))
    return factories


def default_rt_specs(width_px_pr: int = 32, width_px_ao: int = 24,
                     ao_samples: int = 3) -> Dict[str, tuple]:
    """Registry-name specs for the same nine bars.

    Unlike :func:`default_rt_workloads`' closures, these are
    ``(registry_name, params)`` pairs: picklable by name, so the shared
    runner can cache them and fan them out across processes.
    """
    specs: Dict[str, tuple] = {}
    for scene in ("al", "bl", "wm"):
        specs[f"RT-PR-{scene.upper()}"] = (
            f"rt_pr_{scene}", {"width_px": width_px_pr})
    for width in (8, 16):
        for scene in ("al", "bl", "wm"):
            specs[f"RT-AO-{scene.upper()}{width}"] = (
                f"rt_ao_{scene}{width}",
                {"width_px": width_px_ao, "ao_samples": ao_samples})
    return specs


def _spec_job(spec, config: GpuConfig) -> Job:
    """Build a runner job from a (name, params) spec or a legacy factory."""
    if callable(spec):
        return Job(getattr(spec, "__name__", "inline"), config, factory=spec)
    name, params = spec
    return Job(name, config, params=params)


@dataclass
class Fig11Row:
    """One workload's Figure 11 measurements (all percentages/ratios)."""

    name: str
    bcc_total_dc1: float
    scc_total_dc1: float
    bcc_total_dc2: float
    scc_total_dc2: float
    bcc_eu: float
    scc_eu: float
    dc_throughput_base: float
    dc_throughput_bcc: float
    dc_throughput_scc: float


def fig11_data(
    factories: Optional[Dict[str, Callable[[], Workload]]] = None,
    base_config: Optional[GpuConfig] = None,
    runner=None,
) -> List[Fig11Row]:
    """Run every RT workload under {IVB,BCC,SCC} x {DC1,DC2}.

    All 6 configurations of every workload go to the shared runner as a
    single batch, so the full grid parallelizes and caches.  *factories*
    may map names to legacy zero-arg callables or to ``(registry_name,
    params)`` specs; by default the registry specs are used.
    """
    specs = factories if factories is not None else default_rt_specs()
    base = base_config if base_config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    jobs: Dict[tuple, Job] = {}
    for name, spec in specs.items():
        for policy in (CompactionPolicy.IVB, CompactionPolicy.BCC,
                       CompactionPolicy.SCC):
            for dc in (1.0, 2.0):
                config = base.with_policy(policy).with_memory(
                    dc_lines_per_cycle=dc)
                jobs[(name, policy, dc)] = _spec_job(spec, config)
    batch = engine.run(jobs.values())
    rows = []
    for name in specs:
        results = {
            (policy, dc): batch[jobs[(name, policy, dc)]]
            for policy in (CompactionPolicy.IVB, CompactionPolicy.BCC,
                           CompactionPolicy.SCC)
            for dc in (1.0, 2.0)
        }
        ivb1 = results[(CompactionPolicy.IVB, 1.0)]
        ivb2 = results[(CompactionPolicy.IVB, 2.0)]
        rows.append(
            Fig11Row(
                name=name,
                bcc_total_dc1=total_time_reduction_pct(
                    ivb1, results[(CompactionPolicy.BCC, 1.0)]),
                scc_total_dc1=total_time_reduction_pct(
                    ivb1, results[(CompactionPolicy.SCC, 1.0)]),
                bcc_total_dc2=total_time_reduction_pct(
                    ivb2, results[(CompactionPolicy.BCC, 2.0)]),
                scc_total_dc2=total_time_reduction_pct(
                    ivb2, results[(CompactionPolicy.SCC, 2.0)]),
                bcc_eu=ivb1.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                scc_eu=ivb1.eu_cycle_reduction_pct(CompactionPolicy.SCC),
                dc_throughput_base=ivb2.dc_throughput,
                dc_throughput_bcc=results[(CompactionPolicy.BCC, 2.0)].dc_throughput,
                dc_throughput_scc=results[(CompactionPolicy.SCC, 2.0)].dc_throughput,
            )
        )
    return rows


def render(rows: Sequence[Fig11Row]) -> str:
    table_rows = [
        [r.name,
         f"{r.bcc_total_dc1:.1f}%", f"{r.scc_total_dc1:.1f}%",
         f"{r.bcc_total_dc2:.1f}%", f"{r.scc_total_dc2:.1f}%",
         f"{r.bcc_eu:.1f}%", f"{r.scc_eu:.1f}%",
         f"{r.dc_throughput_base:.2f}", f"{r.dc_throughput_scc:.2f}"]
        for r in rows
    ]
    return format_table(
        ["workload", "BCC tot DC1", "SCC tot DC1", "BCC tot DC2",
         "SCC tot DC2", "BCC EU", "SCC EU", "DC thr base", "DC thr SCC"],
        table_rows,
        title="Ray tracing: total-cycle and EU-cycle reduction (Figure 11)",
    )
