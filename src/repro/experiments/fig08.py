"""Paper Figure 8: the Ivy Bridge divergence micro-benchmark.

A balanced if/else runs with five taken-lane patterns; relative
execution time against the no-divergence case (0xFFFF) reveals which
patterns the hardware's built-in optimization compresses:

* ``0x00FF`` — executes as fast as no divergence (the half-mask rewrite
  fires on both arms);
* ``0xFF0F`` — lands at ~150 % (only the else arm is rewritten);
* ``0xF0F0`` and ``0xAAAA`` — full 200 % (nothing fires; these are
  exactly the cases BCC and SCC respectively would recover).

:func:`fig8_analytic` computes the arm-cycle ratios from the cycle
model; :func:`fig8_simulated` measures whole-kernel execution times on
the simulator (diluted toward 1.0 by loop/branch overhead but ordered
identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy, execution_cycles
from ..gpu.config import GpuConfig
from ..kernels.micro import FIG8_PATTERNS, branch_pattern
from ..kernels.workload import run_workload

#: Relative times the paper's Figure 8 bar chart shows (IVB hardware).
PAPER_FIG8_RELATIVE = {
    0xFFFF: 1.0,
    0xF0F0: 2.0,
    0x00FF: 1.0,
    0xFF0F: 1.5,
    0xAAAA: 2.0,
}


@dataclass
class Fig8Point:
    """One divergence pattern's relative execution time."""

    pattern: int
    relative_time: float


def _arm_cycles(pattern: int, policy: CompactionPolicy, width: int = 16) -> int:
    """Cycles for the if arm plus the else arm under *policy*.

    An empty arm is jumped over by the branch hardware and costs nothing.
    """
    full = (1 << width) - 1
    total = 0
    for arm_mask in (pattern, full & ~pattern):
        if arm_mask:
            total += execution_cycles(arm_mask, width, policy, min_cycles=1)
    return total


def fig8_analytic(policy: CompactionPolicy = CompactionPolicy.IVB,
                  patterns=FIG8_PATTERNS) -> List[Fig8Point]:
    """Relative if+else cycle cost vs the coherent 0xFFFF case."""
    base = _arm_cycles(0xFFFF, policy)
    return [
        Fig8Point(pattern=p, relative_time=_arm_cycles(p, policy) / base)
        for p in patterns
    ]


def fig8_simulated(policy: CompactionPolicy = CompactionPolicy.IVB,
                   patterns=FIG8_PATTERNS, n: int = 512,
                   config: Optional[GpuConfig] = None) -> List[Fig8Point]:
    """Measured whole-kernel relative times on the simulator."""
    config = (config if config is not None else GpuConfig()).with_policy(policy)
    cycles: Dict[int, int] = {}
    for pattern in patterns:
        result = run_workload(branch_pattern(pattern, n=n), config)
        cycles[pattern] = result.total_cycles
    base = cycles[0xFFFF]
    return [Fig8Point(p, cycles[p] / base) for p in patterns]


def render(points: List[Fig8Point], title: str) -> str:
    rows = [
        [f"0x{p.pattern:04X}", f"{100.0 * p.relative_time:.0f}%"]
        for p in points
    ]
    return format_table(["IF/ELSE enabled lanes", "Relative execution time"],
                        rows, title=title)
