"""Paper Table 4: summary of BCC and SCC benefits.

Four rows, each max/average over the divergent workload population:

* GPGenSim EU cycles (execution-driven simulator),
* trace EU cycles (trace profiler),
* execution time at DC1 (today's memory system),
* execution time at DC2 (a future better-provisioned memory system).

Paper values for orientation: EU cycles 36/18 (BCC) and 38/24 (SCC) on
the simulator, 31/12 and 42/18 on traces; execution time 21/5 and 21/7
at DC1, 28/12 and 36/18 at DC2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy
from ..gpu.config import GpuConfig
from ..gpu.results import total_time_reduction_pct
from ..runner import Job, default_runner
from ..trace.profiler import profile_trace
from ..trace.workloads import TRACE_PROFILES, trace_events
from .fig09 import DEFAULT_DIVERGENT_WORKLOADS

#: Divergent workloads used for the execution-time rows (timed subset).
DEFAULT_TIMED_WORKLOADS = (
    "mca", "gnoise", "lavamd", "hotspot", "nw",
    "rt_pr_al", "rt_ao_al8", "rt_ao_al16",
)


@dataclass
class Table4Row:
    """One summary row: max/avg benefit for BCC and SCC (percent)."""

    label: str
    bcc_max: float
    bcc_avg: float
    scc_max: float
    scc_avg: float


def _maxavg(values: Sequence[float]) -> tuple:
    values = list(values)
    if not values:
        return 0.0, 0.0
    return max(values), sum(values) / len(values)


def table4_data(
    sim_workloads: Sequence[str] = DEFAULT_DIVERGENT_WORKLOADS,
    timed_workloads: Sequence[str] = DEFAULT_TIMED_WORKLOADS,
    base_config: Optional[GpuConfig] = None,
    runner=None,
) -> List[Table4Row]:
    """Assemble all four Table 4 rows (runs many simulations).

    Every simulation — the EU-cycle population of row 1 and the timed
    DC1/DC2 grids of rows 3-4 — goes to the shared runner as ONE batch,
    so overlapping jobs (a timed workload at DC1 under IVB is the same
    simulation as its row-1 entry) execute exactly once.
    """
    base = base_config if base_config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()

    eu_jobs = {name: Job(name, base) for name in sim_workloads}
    timed_jobs = {}
    for dc in (1.0, 2.0):
        for name in timed_workloads:
            for policy in (CompactionPolicy.IVB, CompactionPolicy.BCC,
                           CompactionPolicy.SCC):
                config = base.with_policy(policy).with_memory(
                    dc_lines_per_cycle=dc)
                timed_jobs[(dc, name, policy)] = Job(name, config)
    batch = engine.run(list(eu_jobs.values()) + list(timed_jobs.values()))

    rows: List[Table4Row] = []

    # Row 1: GPGenSim EU cycles over divergent simulator workloads.
    bcc_eu, scc_eu = [], []
    for name in sim_workloads:
        result = batch[eu_jobs[name]]
        if result.simd_efficiency < 0.95:
            bcc_eu.append(result.eu_cycle_reduction_pct(CompactionPolicy.BCC))
            scc_eu.append(result.eu_cycle_reduction_pct(CompactionPolicy.SCC))
    bmax, bavg = _maxavg(bcc_eu)
    smax, savg = _maxavg(scc_eu)
    rows.append(Table4Row("GPGenSim (EU cycles)", bmax, bavg, smax, savg))

    # Row 2: trace EU cycles over the synthetic trace population.
    bcc_tr, scc_tr = [], []
    for name in TRACE_PROFILES:
        profile = profile_trace(name, trace_events(name))
        bcc_tr.append(profile.bcc_reduction_pct)
        scc_tr.append(profile.scc_reduction_pct)
    bmax, bavg = _maxavg(bcc_tr)
    smax, savg = _maxavg(scc_tr)
    rows.append(Table4Row("Traces (EU cycles)", bmax, bavg, smax, savg))

    # Rows 3-4: execution time at DC1 and DC2.
    for dc, label in ((1.0, "Execution time (DC1)"), (2.0, "Execution time (DC2)")):
        bcc_t, scc_t = [], []
        for name in timed_workloads:
            ivb = batch[timed_jobs[(dc, name, CompactionPolicy.IVB)]]
            bcc_t.append(total_time_reduction_pct(
                ivb, batch[timed_jobs[(dc, name, CompactionPolicy.BCC)]]))
            scc_t.append(total_time_reduction_pct(
                ivb, batch[timed_jobs[(dc, name, CompactionPolicy.SCC)]]))
        bmax, bavg = _maxavg(bcc_t)
        smax, savg = _maxavg(scc_t)
        rows.append(Table4Row(label, bmax, bavg, smax, savg))
    return rows


def render(rows: Sequence[Table4Row]) -> str:
    table_rows = [
        [r.label, f"{r.bcc_max:.0f}%", f"{r.bcc_avg:.0f}%",
         f"{r.scc_max:.0f}%", f"{r.scc_avg:.0f}%"]
        for r in rows
    ]
    return format_table(
        ["Divergent workloads", "BCC max", "BCC avg", "SCC max", "SCC avg"],
        table_rows,
        title="Summary of BCC and SCC benefits (Table 4)",
    )
