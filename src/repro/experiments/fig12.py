"""Paper Figure 12: Rodinia — total-cycle reduction, 128 KB vs perfect L3.

For bfs, hotspot, lavaMD, nw, and particlefilter the paper compares the
total-execution-time reduction of BCC/SCC with the default 128 KB L3 and
with a perfect (infinite) L3, against the EU-cycle reduction.  The
reproduced shape: EU cycles shrink ~20 % on average, but total time
benefits are smaller; BFS, dominated by memory stalls, barely moves
(a perfect L3 helps it somewhat), and lavaMD's workload imbalance keeps
it flat even with a perfect L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy
from ..gpu.config import GpuConfig
from ..gpu.results import total_time_reduction_pct
from ..kernels.workload import Workload
from ..runner import Job, default_runner

RODINIA_NAMES = ("bfs", "hotspot", "lavamd", "nw", "particlefilter")


def _job_for(name: str, factory, config: GpuConfig) -> Job:
    """Named (cacheable) job when *factory* is the registry default,
    inline job when the caller supplied a custom factory."""
    if factory is None:
        return Job(name, config)
    return Job(name, config, factory=factory)


@dataclass
class Fig12Row:
    """One Rodinia kernel's Figure 12 measurements (percentages)."""

    name: str
    bcc_total: float
    scc_total: float
    bcc_total_pl3: float
    scc_total_pl3: float
    bcc_eu: float
    scc_eu: float


def fig12_data(
    factories: Optional[Dict[str, Callable[[], Workload]]] = None,
    base_config: Optional[GpuConfig] = None,
    runner=None,
) -> List[Fig12Row]:
    """Run the Rodinia set under {IVB,BCC,SCC} x {128KB L3, perfect L3}.

    The whole 6-configuration grid for every kernel is submitted to the
    shared runner as one batch (parallel + cached).
    """
    if factories is None:
        factories = {name: None for name in RODINIA_NAMES}
    base = base_config if base_config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    grid = [(policy, perfect)
            for policy in (CompactionPolicy.IVB, CompactionPolicy.BCC,
                           CompactionPolicy.SCC)
            for perfect in (False, True)]
    jobs: Dict[tuple, Job] = {}
    for name, factory in factories.items():
        for policy, perfect in grid:
            config = base.with_policy(policy).with_memory(perfect_l3=perfect)
            jobs[(name, policy, perfect)] = _job_for(name, factory, config)
    batch = engine.run(jobs.values())
    rows = []
    for name in factories:
        results = {key: batch[jobs[(name,) + key]] for key in grid}
        ivb = results[(CompactionPolicy.IVB, False)]
        ivb_pl3 = results[(CompactionPolicy.IVB, True)]
        rows.append(
            Fig12Row(
                name=name,
                bcc_total=total_time_reduction_pct(
                    ivb, results[(CompactionPolicy.BCC, False)]),
                scc_total=total_time_reduction_pct(
                    ivb, results[(CompactionPolicy.SCC, False)]),
                bcc_total_pl3=total_time_reduction_pct(
                    ivb_pl3, results[(CompactionPolicy.BCC, True)]),
                scc_total_pl3=total_time_reduction_pct(
                    ivb_pl3, results[(CompactionPolicy.SCC, True)]),
                bcc_eu=ivb.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                scc_eu=ivb.eu_cycle_reduction_pct(CompactionPolicy.SCC),
            )
        )
    return rows


def render(rows: Sequence[Fig12Row]) -> str:
    table_rows = [
        [r.name,
         f"{r.bcc_total:.1f}%", f"{r.scc_total:.1f}%",
         f"{r.bcc_total_pl3:.1f}%", f"{r.scc_total_pl3:.1f}%",
         f"{r.bcc_eu:.1f}%", f"{r.scc_eu:.1f}%"]
        for r in rows
    ]
    return format_table(
        ["kernel", "BCC total", "SCC total", "BCC total PL3",
         "SCC total PL3", "BCC EU", "SCC EU"],
        table_rows,
        title="Rodinia: total-cycle and EU-cycle reduction (Figure 12)",
    )
