"""Paper Figure 9: SIMD utilization breakdown for divergent workloads.

For every divergent application, the fraction of dynamic SIMD8/SIMD16
instructions in each active-lane bucket (1-4/16, 5-8/16, 9-12/16,
13-16/16, 1-4/8, 5-8/8).  Buckets below the full width are the
compaction opportunity: 1-4/16 saves three cycles under SCC, 5-8/16 two,
9-12/16 one, 1-4/8 one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.efficiency import (
    FIG9_BUCKET_ORDER,
    EfficiencyEntry,
    simulator_efficiencies,
    trace_efficiencies,
    utilization_breakdown,
)
from ..analysis.report import format_table
from ..gpu.config import GpuConfig

#: Divergent simulator workloads shown in the figure by default.
DEFAULT_DIVERGENT_WORKLOADS = (
    "mca", "sobel", "gnoise", "kmeans", "eigenvalue", "scla",
    "gauss", "lu", "bsort", "bsearch", "bp", "hmm", "srad", "glfrag",
    "bfs", "hotspot", "lavamd", "nw", "particlefilter",
    "rt_pr_conf", "rt_ao_al8", "rt_ao_al16",
)


def fig9_data(sim_workloads: Optional[Sequence[str]] = DEFAULT_DIVERGENT_WORKLOADS,
              include_traces: bool = True,
              config: Optional[GpuConfig] = None,
              runner=None) -> Dict[str, Dict[str, float]]:
    """Per-workload bucket fractions, keyed by workload name."""
    entries: List[EfficiencyEntry] = []
    if sim_workloads:
        entries.extend(simulator_efficiencies(sim_workloads, config,
                                              runner=runner))
    if include_traces:
        entries.extend(trace_efficiencies())
    divergent = [e for e in entries if e.divergent]
    return utilization_breakdown(divergent)


def render(table: Dict[str, Dict[str, float]]) -> str:
    headers = ["workload"] + list(FIG9_BUCKET_ORDER) + ["other"]
    rows = []
    for name, fractions in table.items():
        rows.append([name] + [f"{100 * fractions[b]:.1f}%"
                              for b in FIG9_BUCKET_ORDER]
                    + [f"{100 * fractions['other']:.1f}%"])
    return format_table(headers, rows,
                        title="SIMD utilization breakdown (Figure 9)")
