"""Paper Figure 3: SIMD efficiency across the workload population.

Combines both evaluation paths — execution-driven workloads on the
simulator and the synthetic trace set — into one sorted spectrum, then
applies the paper's 95 % threshold to split coherent from divergent
applications.  The reproduced *shape*: coherent linear-algebra/finance
kernels cluster at ~1.0 while ray tracing, BFS, lavaMD, face detection
and the LuxMark/GLBench traces fall well below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.efficiency import (
    EfficiencyEntry,
    classify,
    simulator_efficiencies,
    trace_efficiencies,
)
from ..analysis.report import format_series, format_table
from ..gpu.config import GpuConfig

#: Simulator workloads included by default (all of them can be passed).
DEFAULT_SIM_WORKLOADS = (
    # coherent side
    "va", "dp", "mvm", "transpose", "mm", "bscholes", "bop", "boxfilter",
    "mt", "dct8", "fwht", "dwth", "scnv", "aes", "trd",
    # divergent side
    "mca", "sobel", "gnoise", "kmeans", "knn", "eigenvalue", "scla",
    "gauss", "lu", "fw", "pathfinder", "bsort", "bsearch", "bp", "hmm",
    "srad", "glfrag", "bfs", "hotspot", "lavamd", "nw", "particlefilter",
    "rt_pr_conf", "rt_pr_al", "rt_ao_al8", "rt_ao_al16",
)


@dataclass
class Fig3Data:
    """All Figure 3 entries plus the coherent/divergent partition."""

    entries: List[EfficiencyEntry]
    divergent: List[EfficiencyEntry]
    coherent: List[EfficiencyEntry]


def fig3_data(sim_workloads: Optional[Sequence[str]] = DEFAULT_SIM_WORKLOADS,
              include_traces: bool = True,
              config: Optional[GpuConfig] = None,
              runner=None) -> Fig3Data:
    """Collect SIMD efficiencies from both methodologies."""
    entries: List[EfficiencyEntry] = []
    if sim_workloads:
        entries.extend(simulator_efficiencies(sim_workloads, config,
                                              runner=runner))
    if include_traces:
        entries.extend(trace_efficiencies())
    entries.sort(key=lambda e: e.simd_efficiency, reverse=True)
    divergent, coherent = classify(entries)
    return Fig3Data(entries=entries, divergent=divergent, coherent=coherent)


def render(data: Fig3Data) -> str:
    series = format_series(
        "SIMD efficiency (Figure 3)",
        [f"{e.name} [{e.source[0]}]" for e in data.entries],
        [e.simd_efficiency for e in data.entries],
    )
    summary = format_table(
        ["class", "count", "mean efficiency"],
        [
            ["coherent (>= 0.95)", len(data.coherent),
             _mean([e.simd_efficiency for e in data.coherent])],
            ["divergent (< 0.95)", len(data.divergent),
             _mean([e.simd_efficiency for e in data.divergent])],
        ],
        title="Coherent/divergent split",
    )
    return series + "\n\n" + summary


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
