"""Paper Figure 10: per-workload EU-cycle reduction from BCC and SCC.

The stacked bars of the paper: for every divergent workload, the
percentage of (IVB-baseline) EU execution cycles removed by BCC, and the
additional share removed by SCC.  Both evaluation paths contribute:
simulator workloads are measured from their executed instruction
streams, trace workloads from the profiler.  The paper's headline: up to
42 % reduction, ~20 % on average, SCC >= BCC everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy
from ..gpu.config import GpuConfig
from ..runner import Job, default_runner
from ..trace.profiler import profile_trace
from ..trace.workloads import TRACE_PROFILES, trace_events
from .fig09 import DEFAULT_DIVERGENT_WORKLOADS


@dataclass
class Fig10Bar:
    """One workload's stacked bar."""

    name: str
    source: str
    bcc_pct: float
    scc_pct: float  # total SCC reduction (>= bcc_pct)

    @property
    def scc_additional_pct(self) -> float:
        return self.scc_pct - self.bcc_pct


def fig10_data(sim_workloads: Optional[Sequence[str]] = DEFAULT_DIVERGENT_WORKLOADS,
               include_traces: bool = True,
               config: Optional[GpuConfig] = None,
               runner=None) -> List[Fig10Bar]:
    """EU-cycle reductions for the divergent workload population."""
    config = config if config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    bars: List[Fig10Bar] = []
    jobs = {name: Job(name, config) for name in sim_workloads or ()}
    results = engine.run(jobs.values())
    for name, job in jobs.items():
        result = results[job]
        bars.append(
            Fig10Bar(
                name=name,
                source="simulator",
                bcc_pct=result.eu_cycle_reduction_pct(CompactionPolicy.BCC),
                scc_pct=result.eu_cycle_reduction_pct(CompactionPolicy.SCC),
            )
        )
    if include_traces:
        for name in TRACE_PROFILES:
            profile = profile_trace(name, trace_events(name))
            bars.append(
                Fig10Bar(
                    name=name,
                    source="trace",
                    bcc_pct=profile.bcc_reduction_pct,
                    scc_pct=profile.scc_reduction_pct,
                )
            )
    bars.sort(key=lambda b: b.scc_pct, reverse=True)
    return bars


def summarize(bars: List[Fig10Bar]) -> dict:
    """Max/average reductions (the numbers quoted in the abstract)."""
    if not bars:
        return {"max_scc": 0.0, "avg_scc": 0.0, "max_bcc": 0.0, "avg_bcc": 0.0}
    return {
        "max_scc": max(b.scc_pct for b in bars),
        "avg_scc": sum(b.scc_pct for b in bars) / len(bars),
        "max_bcc": max(b.bcc_pct for b in bars),
        "avg_bcc": sum(b.bcc_pct for b in bars) / len(bars),
    }


def render(bars: List[Fig10Bar]) -> str:
    rows = [
        [b.name, b.source, f"{b.bcc_pct:.1f}%", f"{b.scc_additional_pct:.1f}%",
         f"{b.scc_pct:.1f}%"]
        for b in bars
    ]
    stats = summarize(bars)
    footer = (
        f"max SCC reduction: {stats['max_scc']:.1f}%   "
        f"average SCC reduction: {stats['avg_scc']:.1f}%"
    )
    return (
        format_table(
            ["workload", "source", "BCC", "SCC additional", "SCC total"],
            rows,
            title="EU execution-cycle reduction beyond IVB opt (Figure 10)",
        )
        + "\n" + footer
    )
