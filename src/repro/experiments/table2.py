"""Paper Table 2: nested-branch benefit decomposition.

For nesting levels L1-L4, the paper reports how much of the raw
execution time each optimization layer recovers when a SIMD16 kernel
executes all ``2**L`` branch paths of an L-deep lane-bit split:

======  =====================  ===========  ==============  ===========
Level   Example path masks     BCC benefit  extra SCC       IVB benefit
======  =====================  ===========  ==============  ===========
L1      5555, AAAA                          50 %
L2      1111, 4444, 8888, ...               75 %
L3      0101, 1010, 0404, ...  50 %         25 %
L4      sixteen 1-hot masks    25 %                         50 %
======  =====================  ===========  ==============  ===========

These are analytic identities of the cycle model, so
:func:`table2_analytic` must reproduce them *exactly*;
:func:`table2_simulated` additionally executes the nested-divergence
kernels on the simulator and measures the same decomposition from real
instruction streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import format_table
from ..core.policy import CompactionPolicy, cycles_all_policies
from ..core.quads import format_mask
from ..gpu.config import GpuConfig
from ..kernels.micro import table2_path_masks
from ..runner import Job, default_runner


@dataclass
class Table2Row:
    """One nesting level's benefit decomposition (percent of RAW cycles)."""

    level: int
    path_masks: List[int]
    ivb_benefit_pct: float
    bcc_benefit_pct: float
    scc_benefit_pct: float

    @property
    def total_pct(self) -> float:
        return self.ivb_benefit_pct + self.bcc_benefit_pct + self.scc_benefit_pct


#: The values printed in paper Table 2, as (ivb, bcc, scc) percentages.
PAPER_TABLE2 = {
    1: (0.0, 0.0, 50.0),
    2: (0.0, 0.0, 75.0),
    3: (0.0, 50.0, 25.0),
    4: (50.0, 25.0, 0.0),
}


def table2_analytic(width: int = 16) -> List[Table2Row]:
    """Compute the Table 2 decomposition from the cycle model alone."""
    rows = []
    for level in range(1, 5):
        masks = table2_path_masks(level, width)
        raw = ivb = bcc = scc = 0
        for mask in masks:
            cycles = cycles_all_policies(mask, width)
            raw += cycles[CompactionPolicy.RAW]
            ivb += cycles[CompactionPolicy.IVB]
            bcc += cycles[CompactionPolicy.BCC]
            scc += cycles[CompactionPolicy.SCC]
        rows.append(
            Table2Row(
                level=level,
                path_masks=masks,
                ivb_benefit_pct=100.0 * (raw - ivb) / raw,
                bcc_benefit_pct=100.0 * (ivb - bcc) / raw,
                scc_benefit_pct=100.0 * (bcc - scc) / raw,
            )
        )
    return rows


def table2_simulated(n: int = 512, config: Optional[GpuConfig] = None,
                     runner=None) -> List[Table2Row]:
    """Measure the same decomposition from simulated nested kernels.

    The kernels carry common overhead (address math, compares) alongside
    the divergent leaf work, so simulated percentages are diluted
    relative to the analytic identities; the *ordering* and the zero
    entries are preserved.
    """
    config = config if config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    jobs = {level: Job(f"nested_l{level}", config, params={"n": n})
            for level in range(1, 5)}
    batch = engine.run(jobs.values())
    rows = []
    for level in range(1, 5):
        result = batch[jobs[level]]
        cycles = result.alu_stats.cycles
        raw = cycles[CompactionPolicy.RAW]
        rows.append(
            Table2Row(
                level=level,
                path_masks=table2_path_masks(level),
                ivb_benefit_pct=100.0 * (raw - cycles[CompactionPolicy.IVB]) / raw,
                bcc_benefit_pct=100.0 * (cycles[CompactionPolicy.IVB]
                                         - cycles[CompactionPolicy.BCC]) / raw,
                scc_benefit_pct=100.0 * (cycles[CompactionPolicy.BCC]
                                         - cycles[CompactionPolicy.SCC]) / raw,
            )
        )
    return rows


def render(rows: List[Table2Row], title: str) -> str:
    """Format rows the way paper Table 2 lays them out."""
    table_rows = []
    for row in rows:
        example = format_mask(row.path_masks[0], 16).split()[0]
        table_rows.append([
            f"L{row.level}",
            f"{example} (+{len(row.path_masks) - 1} more)",
            f"{row.bcc_benefit_pct:.1f}%",
            f"{row.scc_benefit_pct:.1f}%",
            f"{row.ivb_benefit_pct:.1f}%",
        ])
    return format_table(
        ["Level", "Example path mask", "BCC benefit",
         "Additional SCC benefit", "IVB optimization benefit"],
        table_rows,
        title=title,
    )
