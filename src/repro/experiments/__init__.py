"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``*_data()`` returning structured results and
``render()`` producing the text table/series matching the paper's
presentation.  The benchmark suite under ``benchmarks/`` and the
validation tests both consume these, so there is exactly one
implementation of every experiment.
"""

from . import area, fig03, fig08, fig09, fig10, fig11, fig12, table2, table4

__all__ = [
    "area",
    "fig03",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "table4",
]
