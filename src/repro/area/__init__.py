"""Register-file area modelling (paper Section 4.3 CACTI comparison)."""

from .regfile import (
    RegFileConfig,
    area,
    baseline_grf,
    bcc_grf,
    interwarp_grf,
    overhead_pct,
    scc_grf,
)

__all__ = [
    "RegFileConfig",
    "area",
    "baseline_grf",
    "bcc_grf",
    "interwarp_grf",
    "overhead_pct",
    "scc_grf",
]
