"""First-order register-file area model (paper Section 4.3).

The paper compares register-file organizations with CACTI 5.x (32 nm)
and reports two ratios: the BCC-modified register file (half-width
128-bit rows, Figure 5b) costs about **+10 %** over the baseline 256-bit
organization, while the 8-banked, per-lane-addressable register file
required by inter-warp compaction techniques costs **more than +40 %**.

CACTI itself is unavailable here, so this module provides a parametric
first-order model: area = cell array + per-row periphery (decoder,
drivers, sense amps) + per-bank fixed overhead + per-port wiring factor.
The constants are chosen so the two paper-reported ratios emerge from
the *structure* (row count, bank count, port count), not from lookup
tables — halving the row width doubles the rows and hence the
row-periphery cost; 8 banks pay eight bank overheads and extra
decoders.  Absolute numbers are arbitrary units; only ratios matter,
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Model constants (arbitrary area units), tuned once against the
#: paper-reported CACTI ratios and then frozen.  Row periphery scales
#: with the square root of the row width (wordline drivers and decode
#: slices shrink, sub-linearly, for narrower rows), which is what lets
#: the BCC file's doubled row count cost ~10 % while the 8-banked
#: per-lane file's 8x row count stays in CACTI's "above 40 %" regime
#: rather than exploding linearly.
CELL_AREA = 1.0  # per bit of storage
ROW_OVERHEAD = 84.5  # per row at the reference 256-bit width
ROW_REFERENCE_BITS = 256  # row width the overhead constant refers to
BANK_OVERHEAD = 1200.0  # per bank: sense amps, control, I/O
PORT_FACTOR = 0.35  # additional wiring per port beyond the first


@dataclass(frozen=True)
class RegFileConfig:
    """A register-file organization.

    Attributes:
        name: label for reports.
        bits_per_row: row (word) width in bits.
        num_rows: addressable rows per bank.
        banks: independently addressable banks.
        ports: read/write port count per bank.
    """

    name: str
    bits_per_row: int
    num_rows: int
    banks: int
    ports: int = 1

    def __post_init__(self) -> None:
        if min(self.bits_per_row, self.num_rows, self.banks, self.ports) < 1:
            raise ValueError(f"{self.name}: all geometry parameters must be >= 1")

    @property
    def total_bits(self) -> int:
        return self.bits_per_row * self.num_rows * self.banks


def area(config: RegFileConfig) -> float:
    """Estimated area of *config* in arbitrary units."""
    port_scale = 1.0 + PORT_FACTOR * (config.ports - 1)
    cells = CELL_AREA * config.total_bits * port_scale
    row_cost = ROW_OVERHEAD * (config.bits_per_row / ROW_REFERENCE_BITS) ** 0.5
    rows = row_cost * config.num_rows * config.banks * port_scale
    banks = BANK_OVERHEAD * config.banks
    return cells + rows + banks


# The three organizations of paper Figure 5, for one EU thread's GRF
# (128 x 256-bit), plus the inter-warp alternative.

def baseline_grf() -> RegFileConfig:
    """Figure 5(a): 128 rows of 256 bits, single bank."""
    return RegFileConfig("baseline", bits_per_row=256, num_rows=128, banks=1)


def bcc_grf() -> RegFileConfig:
    """Figure 5(b): half registers -> 256 rows of 128 bits.

    Twice the rows means twice the row periphery: that is the ~10 %
    overhead the paper measures with CACTI.
    """
    return RegFileConfig("bcc", bits_per_row=128, num_rows=256, banks=1)


def scc_grf() -> RegFileConfig:
    """Figure 5(c): wider but shorter — 64 rows of 512 bits.

    The paper notes this organization is wider but *shorter* than the
    baseline (reduced addressing overhead); crossbar area is accounted
    separately and excluded, as in the paper's comparison.
    """
    return RegFileConfig("scc", bits_per_row=512, num_rows=64, banks=1)


def interwarp_grf() -> RegFileConfig:
    """8-banked, per-lane addressable file used by inter-warp schemes.

    Per-lane addressing splits each 256-bit register over eight 32-bit
    banks, each independently decoded — the organization TBC/DWF-class
    techniques require (paper Section 4.3, citing [12], [11]).
    """
    return RegFileConfig("interwarp-8bank", bits_per_row=32, num_rows=128, banks=8)


def overhead_pct(config: RegFileConfig, base: RegFileConfig = None) -> float:
    """Percent area overhead of *config* vs the baseline GRF."""
    base_cfg = base if base is not None else baseline_grf()
    base_area = area(base_cfg)
    return 100.0 * (area(config) - base_area) / base_area
