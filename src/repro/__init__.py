"""repro: reproduction of *SIMD Divergence Optimization through
Intra-Warp Compaction* (Vaidya et al., ISCA 2013).

The library provides:

* :mod:`repro.core` — BCC/SCC/IVB cycle-compression logic (the paper's
  contribution) as pure, analysable functions on execution masks.
* :mod:`repro.isa` / :mod:`repro.eu` / :mod:`repro.memory` /
  :mod:`repro.gpu` — an execution-driven, cycle-level simulator of the
  Ivy Bridge-like GPU the paper studies.
* :mod:`repro.kernels` — the divergent and coherent workload suite.
* :mod:`repro.trace` — the trace-driven methodology, with synthetic
  generators substituting for proprietary workload traces.
* :mod:`repro.analysis` / :mod:`repro.area` — SIMD-efficiency reporting
  and the register-file area model.
* :mod:`repro.runner` — the shared execution engine: deduplicated,
  process-parallel, disk-cached ``(workload, config)`` simulation jobs
  that every experiment and benchmark routes through.
"""

from .core import (
    CompactionPolicy,
    CompactionStats,
    bcc_cycles,
    bcc_schedule,
    cycles_all_policies,
    execution_cycles,
    ivb_effective,
    scc_cycles,
    scc_schedule,
)
from .gpu import GpuConfig, GpuSimulator, KernelRunResult
from .isa import CmpOp, DType, KernelBuilder, Program
from .runner import Job, ResultCache, Runner, default_runner

__version__ = "1.0.0"

__all__ = [
    "CmpOp",
    "CompactionPolicy",
    "CompactionStats",
    "DType",
    "GpuConfig",
    "GpuSimulator",
    "Job",
    "KernelBuilder",
    "KernelRunResult",
    "Program",
    "ResultCache",
    "Runner",
    "default_runner",
    "bcc_cycles",
    "bcc_schedule",
    "cycles_all_policies",
    "execution_cycles",
    "ivb_effective",
    "scc_cycles",
    "scc_schedule",
    "__version__",
]
