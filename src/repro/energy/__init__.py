"""Dynamic-energy modelling for the compaction techniques (Section 4.3)."""

from .model import (
    EnergyBreakdown,
    energy_all_policies,
    energy_breakdown,
    energy_savings_pct,
)

__all__ = [
    "EnergyBreakdown",
    "energy_all_policies",
    "energy_breakdown",
    "energy_savings_pct",
]
