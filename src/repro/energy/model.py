"""First-order dynamic-energy model for the compaction techniques.

The paper discusses energy qualitatively (Section 4.3): BCC saves both
execution cycles and register-file operand fetches "given its simple
control logic", so it is a clear win; SCC saves more cycles but adds
crossbar datapath activity and "a modest increase in control logic
power" that the authors "are unable to quantify more precisely".  This
model makes those statements quantitative under explicit, documented
assumptions:

* one ALU *quad cycle* costs ``E_QUAD``;
* one 128-bit half-register GRF access costs ``E_RF_ACCESS``
  (register-file reads dominate small-operand ALU energy on GPUs, hence
  the > 1x ratio);
* each lane routed through the SCC operand crossbar costs ``E_SWIZZLE``
  on top (two traversals: operand swizzle + write-back unswizzle);
* per-instruction front-end/control energy ``E_CONTROL`` with a
  multiplier for the more complex SCC mask-analysis logic.

All values are arbitrary units; only the relative picture matters, as
in the paper's discussion.  Inputs come straight from
:class:`repro.core.stats.CompactionStats`, so every simulator or trace
run can be converted into an energy breakdown after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.policy import CompactionPolicy
from ..core.stats import CompactionStats

#: Energy per ALU quad cycle (4 lanes of FP32 work), arbitrary units.
E_QUAD = 1.0
#: Energy per 128-bit half-register GRF access (read or write).
E_RF_ACCESS = 1.6
#: Energy per lane pass through a 4x4 operand crossbar (one direction).
E_SWIZZLE = 0.08
#: Front-end/control energy per issued instruction.
E_CONTROL = 0.5
#: Control-logic multiplier for SCC's swizzle-setting computation.
SCC_CONTROL_FACTOR = 1.35
#: Control-logic multiplier for BCC's simple quad-skip logic.
BCC_CONTROL_FACTOR = 1.05


@dataclass
class EnergyBreakdown:
    """Per-component dynamic energy for one policy (arbitrary units)."""

    policy: CompactionPolicy
    alu: float
    register_file: float
    crossbar: float
    control: float

    @property
    def total(self) -> float:
        return self.alu + self.register_file + self.crossbar + self.control

    def as_dict(self) -> Dict[str, float]:
        return {
            "alu": self.alu,
            "register_file": self.register_file,
            "crossbar": self.crossbar,
            "control": self.control,
            "total": self.total,
        }


def energy_breakdown(stats: CompactionStats,
                     policy: CompactionPolicy) -> EnergyBreakdown:
    """Dynamic energy of executing *stats*' instruction stream.

    ALU energy follows the policy's quad-cycle count.  Register-file
    energy follows the quads actually fetched: the IVB/RAW baselines
    fetch every quad, BCC and SCC fetch only active quads (SCC's
    full-width fetch into the 512-bit latch reads the same bits; the
    datapath then consumes only the compacted lanes, which we model as
    equal access energy — the paper notes SCC has *no* fetch-bandwidth
    savings, so it keeps the baseline access count).
    """
    alu = E_QUAD * stats.cycles[policy]
    if policy is CompactionPolicy.BCC:
        rf_accesses = stats.rf_accesses_bcc
    elif policy is CompactionPolicy.SCC:
        # Paper Section 4.2: "there is no operand fetch bandwidth
        # savings for SCC" — the wide latch reads full operands.
        rf_accesses = stats.rf_accesses_baseline
    else:
        rf_accesses = stats.rf_accesses_baseline
    register_file = E_RF_ACCESS * rf_accesses

    crossbar = 0.0
    if policy is CompactionPolicy.SCC:
        # Swizzle on the way in, unswizzle on write-back.
        crossbar = 2.0 * E_SWIZZLE * stats.scc_swizzles

    control_factor = {
        CompactionPolicy.RAW: 1.0,
        CompactionPolicy.IVB: 1.0,
        CompactionPolicy.BCC: BCC_CONTROL_FACTOR,
        CompactionPolicy.SCC: SCC_CONTROL_FACTOR,
    }[policy]
    control = E_CONTROL * stats.instructions * control_factor

    return EnergyBreakdown(
        policy=policy,
        alu=alu,
        register_file=register_file,
        crossbar=crossbar,
        control=control,
    )


def energy_all_policies(stats: CompactionStats) -> Dict[CompactionPolicy, EnergyBreakdown]:
    """Energy breakdowns for every policy over the same stream."""
    return {
        policy: energy_breakdown(stats, policy)
        for policy in CompactionPolicy
    }


def energy_savings_pct(stats: CompactionStats, policy: CompactionPolicy,
                       baseline: CompactionPolicy = CompactionPolicy.IVB) -> float:
    """Percent total dynamic energy saved by *policy* vs *baseline*."""
    base = energy_breakdown(stats, baseline).total
    if base == 0:
        return 0.0
    return 100.0 * (base - energy_breakdown(stats, policy).total) / base
