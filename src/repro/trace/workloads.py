"""Calibrated synthetic profiles for the paper's trace-based workloads.

Each profile below stands in for one proprietary trace from paper
Section 5.1/5.3 (LuxMark, BulletPhysics, RightWare, Sandra, GLBench,
Face-Detection, ...).  The distributions are calibrated so the profiled
BCC/SCC EU-cycle reductions land in the ranges the paper reports:

* LuxMark / BulletPhysics / RightWare: 25-42 % total, with one quarter
  to one third of the benefit attributable to SCC beyond BCC;
* other OpenCL kernels: 5-25 %;
* GLBench (OpenGL): 15-22 %, the major portion from SCC;
* Face-Detection: ~30 %, the larger share from SCC.

The paper notes LuxMark's kernels compile to SIMD8 (register pressure),
which the width mixes reflect.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .format import TraceEvent
from .synth import PatternFamily, SyntheticProfile, generate_trace

#: Default dynamic instruction count per synthetic trace.
DEFAULT_LENGTH = 20_000


def _profile(name, widths, histogram, patterns, seed) -> SyntheticProfile:
    return SyntheticProfile(
        name=name,
        num_instructions=DEFAULT_LENGTH,
        width_mix=tuple(widths),
        active_histogram=tuple(histogram),
        pattern_weights=tuple(patterns),
        seed=seed,
    )


def _luxmark(name: str, seed: int, coherent_frac: float = 0.18) -> SyntheticProfile:
    # SIMD8 ray-tracing kernels: most instructions run with few lanes
    # alive, and the holes are mostly contiguous (ray packets retire in
    # bursts) with a scattered minority that only SCC can compact.
    histogram = [(8, coherent_frac * 10)] + [
        (a, w) for a, w in ((1, 2.2), (2, 2.4), (3, 2.0), (4, 1.8),
                            (5, 1.2), (6, 1.0), (7, 0.8))
    ]
    patterns = [
        (PatternFamily.CONTIGUOUS, 0.45),
        (PatternFamily.QUAD_ALIGNED, 0.25),
        (PatternFamily.SCATTERED, 0.30),
    ]
    return _profile(name, [(8, 1.0)], histogram, patterns, seed)


def _physics(name: str, seed: int) -> SyntheticProfile:
    # BulletPhysics / RightWare style: SIMD16 with deep divergence from
    # per-object branching; island structure keeps many holes aligned.
    histogram = [(16, 2.0), (12, 1.0), (10, 1.0), (8, 1.6), (6, 1.4),
                 (4, 2.2), (3, 1.4), (2, 1.4), (1, 1.0)]
    patterns = [
        (PatternFamily.QUAD_ALIGNED, 0.40),
        (PatternFamily.CONTIGUOUS, 0.25),
        (PatternFamily.CLUSTERED, 0.15),
        (PatternFamily.SCATTERED, 0.20),
    ]
    return _profile(name, [(16, 0.8), (8, 0.2)], histogram, patterns, seed)


def _moderate(name: str, seed: int, coherent_weight: float = 6.0) -> SyntheticProfile:
    # "Several other OpenCL kernels see benefits of 5-25%": mostly
    # coherent instructions with a divergent minority.
    histogram = [(16, coherent_weight), (12, 1.0), (8, 1.0), (4, 0.8), (2, 0.5)]
    patterns = [
        (PatternFamily.CONTIGUOUS, 0.40),
        (PatternFamily.QUAD_ALIGNED, 0.20),
        (PatternFamily.SCATTERED, 0.25),
        (PatternFamily.CLUSTERED, 0.15),
    ]
    return _profile(name, [(16, 1.0)], histogram, patterns, seed)


def _glbench(name: str, seed: int) -> SyntheticProfile:
    # OpenGL shader traces: divergence from fragment quad edges and
    # alpha-tested geometry; lanes die in scattered/strided positions,
    # so the major share of the benefit needs SCC.
    histogram = [(16, 3.2), (14, 1.2), (12, 1.4), (10, 1.2), (8, 1.0),
                 (6, 0.9), (4, 0.8), (2, 0.5)]
    patterns = [
        (PatternFamily.SCATTERED, 0.55),
        (PatternFamily.STRIDED, 0.25),
        (PatternFamily.CLUSTERED, 0.15),
        (PatternFamily.CONTIGUOUS, 0.05),
    ]
    return _profile(name, [(16, 0.7), (8, 0.3)], histogram, patterns, seed)


def _face_detection(name: str, seed: int) -> SyntheticProfile:
    # Cascade classifiers: windows reject at every stage, killing lanes
    # in data-dependent (scattered) positions; ~30% benefit, mostly SCC.
    histogram = [(16, 3.4), (12, 1.2), (9, 1.2), (7, 1.2), (5, 1.4),
                 (3, 1.6), (2, 1.2), (1, 1.0)]
    patterns = [
        (PatternFamily.SCATTERED, 0.60),
        (PatternFamily.CLUSTERED, 0.20),
        (PatternFamily.STRIDED, 0.10),
        (PatternFamily.CONTIGUOUS, 0.10),
    ]
    return _profile(name, [(16, 1.0)], histogram, patterns, seed)


#: Every synthetic trace workload, keyed by the paper's trace name.
TRACE_PROFILES: Dict[str, SyntheticProfile] = {
    "luxmark_sky": _luxmark("luxmark_sky", 201, coherent_frac=0.10),
    "luxmark_sala": _luxmark("luxmark_sala", 202, coherent_frac=0.16),
    "luxmark_ocl": _luxmark("luxmark_ocl", 203, coherent_frac=0.22),
    "luxmark_hdr": _moderate("luxmark_hdr", 204, coherent_weight=5.0),
    "bulletphysics": _physics("bulletphysics", 205),
    "rightware_mandelbulb": _physics("rightware_mandelbulb", 206),
    "cp": _moderate("cp", 207, coherent_weight=9.0),
    "oclprofv1p0": _moderate("oclprofv1p0", 208, coherent_weight=7.0),
    "tree_search": _moderate("tree_search", 209, coherent_weight=4.0),
    "optsaa": _moderate("optsaa", 210, coherent_weight=6.0),
    "sandra_ocl": _moderate("sandra_ocl", 211, coherent_weight=5.5),
    "ati_eigenval": _moderate("ati_eigenval", 212, coherent_weight=6.5),
    "ati_floydwarshall": _moderate("ati_floydwarshall", 213, coherent_weight=8.0),
    "glbench_egypt": _glbench("glbench_egypt", 214),
    "glbench_pro": _glbench("glbench_pro", 215),
    "fd_intelfinalists": _face_detection("fd_intelfinalists", 216),
    "fd_politicians": _face_detection("fd_politicians", 217),
}

#: Paper-reported target bands for total SCC EU-cycle reduction (%),
#: used by the validation tests and EXPERIMENTS.md.
EXPECTED_SCC_REDUCTION_BANDS: Dict[str, tuple] = {
    "luxmark_sky": (25.0, 45.0),
    "luxmark_sala": (25.0, 45.0),
    "luxmark_ocl": (20.0, 45.0),
    "luxmark_hdr": (5.0, 25.0),
    "bulletphysics": (25.0, 45.0),
    "rightware_mandelbulb": (25.0, 45.0),
    "cp": (5.0, 25.0),
    "oclprofv1p0": (5.0, 25.0),
    "tree_search": (5.0, 28.0),
    "optsaa": (5.0, 25.0),
    "sandra_ocl": (5.0, 25.0),
    "ati_eigenval": (5.0, 25.0),
    "ati_floydwarshall": (5.0, 25.0),
    "glbench_egypt": (14.0, 24.0),
    "glbench_pro": (14.0, 24.0),
    "fd_intelfinalists": (24.0, 36.0),
    "fd_politicians": (24.0, 36.0),
}


def trace_events(name: str) -> Iterator[TraceEvent]:
    """Event stream for the named synthetic trace workload."""
    return generate_trace(TRACE_PROFILES[name])


def all_trace_events() -> Dict[str, Iterator[TraceEvent]]:
    """Name -> event-stream mapping for every trace workload."""
    return {name: trace_events(name) for name in TRACE_PROFILES}


def trace_names() -> List[str]:
    return list(TRACE_PROFILES)
