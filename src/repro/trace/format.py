"""Execution-mask trace format.

The paper's trace-based methodology instruments a functional model to
record, for every executed SIMD instruction, its width and final
execution mask (Section 5.1); BCC/SCC benefit is then computed offline.
A trace here is a sequence of :class:`TraceEvent` records, storable as a
simple text format (one ``width mask_hex dtype_factor`` triple per line,
``#`` comments allowed) so traces can be exchanged with other tools.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..core.quads import clamp_mask, validate_width


@dataclass(frozen=True)
class TraceEvent:
    """One executed SIMD instruction: width, execution mask, dtype factor."""

    width: int
    mask: int
    dtype_factor: int = 1

    def __post_init__(self) -> None:
        validate_width(self.width)
        if self.mask != clamp_mask(self.mask, self.width):
            raise ValueError(
                f"mask 0x{self.mask:X} does not fit SIMD{self.width}"
            )
        if self.dtype_factor < 1:
            raise ValueError(f"dtype_factor must be >= 1, got {self.dtype_factor}")


def write_trace(events: Iterable[TraceEvent], destination: Union[str, Path, io.TextIOBase]) -> int:
    """Write *events* in the text format; returns the event count."""
    own = isinstance(destination, (str, Path))
    stream = open(destination, "w") if own else destination
    try:
        stream.write("# repro execution-mask trace: width mask_hex dtype_factor\n")
        count = 0
        for event in events:
            stream.write(f"{event.width} {event.mask:x} {event.dtype_factor}\n")
            count += 1
        return count
    finally:
        if own:
            stream.close()


def read_trace(source: Union[str, Path, io.TextIOBase]) -> Iterator[TraceEvent]:
    """Parse a text trace lazily; raises ``ValueError`` on malformed lines."""
    own = isinstance(source, (str, Path))
    stream = open(source) if own else source
    try:
        for lineno, line in enumerate(stream, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"line {lineno}: expected 2-3 fields, got {line!r}")
            width = int(parts[0])
            mask = int(parts[1], 16)
            factor = int(parts[2]) if len(parts) == 3 else 1
            yield TraceEvent(width, mask, factor)
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, Path, io.TextIOBase]) -> List[TraceEvent]:
    """Eagerly read a whole trace into a list."""
    return list(read_trace(source))
