"""Offline BCC/SCC profiling of execution-mask traces.

This is the paper's trace-based evaluation path (Section 5.1): the
instrumented functional model emits ``(width, mask)`` per instruction;
the profiler replays the stream through the compaction cycle model and
reports SIMD efficiency, utilization breakdown, and EU-cycle reductions
— without any pipeline simulation, which is why the paper could cover
~600 traces this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..core.policy import CompactionPolicy
from ..core.stats import CompactionStats, is_divergent
from .format import TraceEvent


@dataclass
class TraceProfile:
    """Profiling result for one trace."""

    name: str
    stats: CompactionStats

    @property
    def simd_efficiency(self) -> float:
        return self.stats.simd_efficiency

    @property
    def divergent(self) -> bool:
        """Paper classification: SIMD efficiency below 95 %."""
        return is_divergent(self.simd_efficiency)

    @property
    def bcc_reduction_pct(self) -> float:
        """EU-cycle reduction of BCC beyond the IVB baseline."""
        return self.stats.reduction_pct(CompactionPolicy.BCC)

    @property
    def scc_reduction_pct(self) -> float:
        """EU-cycle reduction of SCC beyond the IVB baseline."""
        return self.stats.reduction_pct(CompactionPolicy.SCC)

    @property
    def scc_additional_pct(self) -> float:
        """SCC's gain over and above BCC (the stacked part of Fig. 10)."""
        return self.scc_reduction_pct - self.bcc_reduction_pct

    def summary(self) -> Dict[str, float]:
        out = self.stats.summary()
        out["divergent"] = float(self.divergent)
        return out


def profile_trace(name: str, events: Iterable[TraceEvent],
                  min_cycles: int = 1) -> TraceProfile:
    """Replay *events* through the compaction model.

    ``min_cycles=1`` matches the execution-driven simulator's convention
    that a fully masked-off instruction still spends an issue slot.
    """
    stats = CompactionStats(min_cycles=min_cycles)
    for event in events:
        stats.record(event.mask, event.width, event.dtype_factor)
    return TraceProfile(name=name, stats=stats)


def profile_many(traces: Dict[str, Iterable[TraceEvent]],
                 min_cycles: int = 1) -> Dict[str, TraceProfile]:
    """Profile a dict of named traces (insertion order preserved)."""
    return {
        name: profile_trace(name, events, min_cycles)
        for name, events in traces.items()
    }
