"""Trace-driven methodology: formats, profiling, synthetic generation."""

from .format import TraceEvent, load_trace, read_trace, write_trace
from .profiler import TraceProfile, profile_many, profile_trace
from .synth import PatternFamily, SyntheticProfile, generate_trace, generate_trace_list
from .transform import narrow_trace, subsample_trace, widen_trace
from .workloads import (
    EXPECTED_SCC_REDUCTION_BANDS,
    TRACE_PROFILES,
    all_trace_events,
    trace_events,
    trace_names,
)

__all__ = [
    "EXPECTED_SCC_REDUCTION_BANDS",
    "TRACE_PROFILES",
    "PatternFamily",
    "SyntheticProfile",
    "TraceEvent",
    "TraceProfile",
    "all_trace_events",
    "generate_trace",
    "generate_trace_list",
    "load_trace",
    "narrow_trace",
    "subsample_trace",
    "widen_trace",
    "profile_many",
    "profile_trace",
    "read_trace",
    "trace_events",
    "trace_names",
    "write_trace",
]
