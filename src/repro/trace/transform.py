"""Trace transformations: re-targeting mask streams at other machines.

The paper's conclusion argues that NVIDIA's 32-wide and AMD's 64-wide
warps would see *larger* intra-warp compaction benefits because SIMD
efficiency falls with width.  :func:`widen_trace` makes that argument
executable on any captured trace: it models the wider machine by fusing
consecutive warps of the same program into one double-width warp (lane
``i`` of warp ``2k+1`` becomes lane ``width + i`` of fused warp ``k``),
which is exactly how the same NDRange would be packed at double the
warp width.  :func:`narrow_trace` is the inverse split, and
:func:`subsample_trace` thins a stream deterministically for quick
looks at long captures.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..core.quads import validate_width
from .format import TraceEvent


def widen_trace(events: Iterable[TraceEvent], factor: int = 2) -> Iterator[TraceEvent]:
    """Fuse groups of *factor* same-shape events into wider ones.

    Events are fused per (width, dtype_factor) shape in arrival order; a
    leftover group smaller than *factor* is emitted padded with inactive
    lanes (the tail warp of the wider machine).  The fused width must be
    a supported SIMD width.
    """
    if factor < 1 or factor & (factor - 1):
        raise ValueError(f"factor must be a positive power of two, got {factor}")
    if factor == 1:
        yield from events
        return
    pending: dict = {}
    for event in events:
        key = (event.width, event.dtype_factor)
        validate_width(event.width * factor)
        bucket = pending.setdefault(key, [])
        bucket.append(event.mask)
        if len(bucket) == factor:
            yield _fuse(bucket, event.width, event.dtype_factor, factor)
            pending[key] = []
    for (width, dtype_factor), bucket in pending.items():
        if bucket:
            yield _fuse(bucket, width, dtype_factor, factor)


def _fuse(masks: List[int], width: int, dtype_factor: int,
          factor: int) -> TraceEvent:
    fused = 0
    for index, mask in enumerate(masks):
        fused |= mask << (index * width)
    # A partial tail group still widens to the full fused width, with
    # the missing warps' lanes inactive: the wider machine runs a
    # half-empty tail warp for the same threads.
    return TraceEvent(width * factor, fused, dtype_factor)


def narrow_trace(events: Iterable[TraceEvent], factor: int = 2) -> Iterator[TraceEvent]:
    """Split each event into *factor* consecutive narrower events.

    The inverse of :func:`widen_trace` for full groups.  Empty slices
    are still emitted: on the narrow machine those warps exist (they
    just execute nothing useful), matching how a narrower GPU would
    schedule the same threads.
    """
    if factor < 1 or factor & (factor - 1):
        raise ValueError(f"factor must be a positive power of two, got {factor}")
    for event in events:
        if factor == 1:
            yield event
            continue
        if event.width % factor != 0:
            raise ValueError(
                f"cannot split SIMD{event.width} into {factor} parts")
        narrow = event.width // factor
        validate_width(narrow)
        lane_mask = (1 << narrow) - 1
        for part in range(factor):
            yield TraceEvent(narrow,
                             (event.mask >> (part * narrow)) & lane_mask,
                             event.dtype_factor)


def subsample_trace(events: Iterable[TraceEvent], keep_every: int) -> Iterator[TraceEvent]:
    """Deterministically keep every *keep_every*-th event."""
    if keep_every < 1:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    for index, event in enumerate(events):
        if index % keep_every == 0:
            yield event
