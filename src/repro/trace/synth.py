"""Synthetic execution-mask trace generation.

The paper's trace set (LuxMark, BulletPhysics, Sandra, RightWare,
GLBench, Face-Detection, ...) is proprietary.  The trace methodology,
however, consumes nothing but ``(width, mask)`` streams, so any stream
with matching *mask statistics* exercises the identical analysis path.
A :class:`SyntheticProfile` describes those statistics:

* the SIMD-width mix (e.g. LuxMark kernels are SIMD8 — the paper notes
  the compiler picks SIMD8 under register pressure);
* a histogram over the number of active lanes; and
* a *pattern family* governing where the active lanes sit, which is what
  separates BCC-friendly traces (contiguous, quad-aligned holes) from
  SCC-only traces (scattered or strided lanes).

Generation is deterministic per (profile, seed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..core.quads import QUAD_WIDTH, mask_from_lanes, validate_width
from .format import TraceEvent


class PatternFamily(enum.Enum):
    """Where the active lanes of a divergent mask are placed."""

    CONTIGUOUS = "contiguous"  # one run of lanes at a random offset
    QUAD_ALIGNED = "quad_aligned"  # whole quads on/off (ideal for BCC)
    SCATTERED = "scattered"  # uniform random lane choice (needs SCC)
    STRIDED = "strided"  # every k-th lane (needs SCC)
    CLUSTERED = "clustered"  # a few short runs (mixed BCC/SCC)


@dataclass(frozen=True)
class SyntheticProfile:
    """Mask statistics of one synthetic workload trace.

    Attributes:
        name: workload label (paper trace name).
        num_instructions: dynamic SIMD instruction count to generate.
        width_mix: mapping SIMD width -> probability.
        active_histogram: mapping active-lane count -> weight, applied
            per instruction *after* the width is chosen (counts above
            the width are clipped to the width).
        pattern_weights: mapping PatternFamily -> weight for divergent
            instructions.
        seed: RNG seed (generation is deterministic).
    """

    name: str
    num_instructions: int
    width_mix: Tuple[Tuple[int, float], ...]
    active_histogram: Tuple[Tuple[int, float], ...]
    pattern_weights: Tuple[Tuple[PatternFamily, float], ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_instructions < 1:
            raise ValueError("num_instructions must be positive")
        for width, _ in self.width_mix:
            validate_width(width)
        if not self.width_mix or not self.active_histogram or not self.pattern_weights:
            raise ValueError("profile distributions must be non-empty")


def _choose(rng: np.random.Generator, items: Sequence, weights: Sequence[float]):
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    idx = rng.choice(len(items), p=weights / total)
    return items[idx]


def _pattern_lanes(rng: np.random.Generator, family: PatternFamily,
                   active: int, width: int) -> List[int]:
    """Pick *active* lane positions within *width* per the family."""
    if active >= width:
        return list(range(width))
    if family is PatternFamily.CONTIGUOUS:
        start = int(rng.integers(0, width - active + 1))
        return list(range(start, start + active))
    if family is PatternFamily.QUAD_ALIGNED:
        # Fill whole quads first, remainder contiguous in the next quad.
        quads = list(rng.permutation(width // QUAD_WIDTH))
        lanes: List[int] = []
        remaining = active
        for q in quads:
            take = min(QUAD_WIDTH, remaining)
            lanes.extend(q * QUAD_WIDTH + i for i in range(take))
            remaining -= take
            if remaining == 0:
                break
        return lanes
    if family is PatternFamily.SCATTERED:
        return list(rng.choice(width, size=active, replace=False))
    if family is PatternFamily.STRIDED:
        stride = int(rng.choice([2, 4]))
        phase = int(rng.integers(0, stride))
        lanes = list(range(phase, width, stride))[:active]
        # Top up from unused lanes if the stride cannot host `active`.
        if len(lanes) < active:
            pool = [l for l in range(width) if l not in lanes]
            extra = rng.choice(len(pool), size=active - len(lanes), replace=False)
            lanes.extend(pool[i] for i in extra)
        return lanes
    if family is PatternFamily.CLUSTERED:
        lanes_set: set = set()
        while len(lanes_set) < active:
            run = int(rng.integers(1, 4))
            start = int(rng.integers(0, width))
            for i in range(run):
                if len(lanes_set) >= active:
                    break
                lanes_set.add((start + i) % width)
        return sorted(lanes_set)
    raise ValueError(f"unknown pattern family {family!r}")  # pragma: no cover


def generate_trace(profile: SyntheticProfile) -> Iterator[TraceEvent]:
    """Yield the deterministic event stream described by *profile*."""
    rng = np.random.default_rng(profile.seed + hash(profile.name) % (2**31))
    widths = [w for w, _ in profile.width_mix]
    width_w = [p for _, p in profile.width_mix]
    counts = [c for c, _ in profile.active_histogram]
    count_w = [p for _, p in profile.active_histogram]
    families = [f for f, _ in profile.pattern_weights]
    family_w = [p for _, p in profile.pattern_weights]

    for _ in range(profile.num_instructions):
        width = _choose(rng, widths, width_w)
        active = min(_choose(rng, counts, count_w), width)
        if active <= 0:
            active = 1
        if active == width:
            yield TraceEvent(width, (1 << width) - 1)
            continue
        family = _choose(rng, families, family_w)
        lanes = _pattern_lanes(rng, family, active, width)
        yield TraceEvent(width, mask_from_lanes(lanes, width))


def generate_trace_list(profile: SyntheticProfile) -> List[TraceEvent]:
    """Materialized version of :func:`generate_trace`."""
    return list(generate_trace(profile))
