"""The paper's primary contribution: intra-warp cycle compaction.

This package implements the execution-mask analysis at the heart of
*SIMD Divergence Optimization through Intra-Warp Compaction* (ISCA 2013):

* :mod:`repro.core.quads` — execution masks and the quad (4-lane) model.
* :mod:`repro.core.ivb` — the pre-existing Ivy Bridge half-mask rewrite.
* :mod:`repro.core.bcc` — Basic Cycle Compression.
* :mod:`repro.core.scc` — Swizzled Cycle Compression (Figure 6 algorithm).
* :mod:`repro.core.policy` — policy enum and the cycle-count oracle.
* :mod:`repro.core.stats` — stream statistics behind Figures 3, 9, 10.
"""

from .bcc import BccSchedule, QuadOp, bcc_cycles, bcc_schedule, is_bcc_friendly
from .ivb import baseline_cycles, ivb_applicable, ivb_cycles, ivb_effective
from .policy import (
    POLICY_ORDER,
    CompactionPolicy,
    cycles_all_policies,
    execution_cycles,
    parse_policy,
)
from .quads import (
    QUAD_WIDTH,
    VALID_SIMD_WIDTHS,
    active_lanes,
    active_quad_count,
    active_quads,
    format_mask,
    mask_from_lanes,
    num_quads,
    optimal_cycles,
    popcount,
    quad_masks,
)
from .scc import LaneSlot, SccSchedule, scc_cycles, scc_schedule
from .scc_hw import (
    ControlWord,
    control_bits_per_instruction,
    control_stream,
    decode_cycle,
    encode_cycle,
    encode_schedule,
)
from .stats import UTILIZATION_BUCKETS, CompactionStats, is_divergent, utilization_bucket

__all__ = [
    "QUAD_WIDTH",
    "VALID_SIMD_WIDTHS",
    "POLICY_ORDER",
    "UTILIZATION_BUCKETS",
    "BccSchedule",
    "CompactionPolicy",
    "ControlWord",
    "control_bits_per_instruction",
    "control_stream",
    "decode_cycle",
    "encode_cycle",
    "encode_schedule",
    "CompactionStats",
    "LaneSlot",
    "QuadOp",
    "SccSchedule",
    "active_lanes",
    "active_quad_count",
    "active_quads",
    "baseline_cycles",
    "bcc_cycles",
    "bcc_schedule",
    "cycles_all_policies",
    "execution_cycles",
    "format_mask",
    "is_bcc_friendly",
    "is_divergent",
    "ivb_applicable",
    "ivb_cycles",
    "ivb_effective",
    "mask_from_lanes",
    "num_quads",
    "optimal_cycles",
    "parse_policy",
    "popcount",
    "quad_masks",
    "scc_cycles",
    "scc_schedule",
    "utilization_bucket",
]
