"""Execution-mask and quad utilities.

The studied GPU executes a wide SIMD instruction as a sequence of *quads*:
groups of four contiguous lanes that pass through the 4-wide ALU, one quad
per cycle (Figure 2 of the paper).  Every compaction technique in this
library is defined in terms of the per-quad structure of the instruction's
execution mask, so this module is the foundation of :mod:`repro.core`.

An execution mask is represented as a plain ``int`` bitmask: bit *i* set
means SIMD lane *i* is enabled.  The SIMD width travels alongside the mask
as a separate argument; masks are always interpreted modulo ``2**width``.
"""

from __future__ import annotations

from typing import List, Tuple

#: Number of lanes that the hardware ALU executes per cycle (the "quad").
QUAD_WIDTH = 4

#: SIMD widths supported by the modelled EU ISA (paper Section 2.2).
VALID_SIMD_WIDTHS = (1, 4, 8, 16, 32)


def validate_width(width: int) -> None:
    """Raise ``ValueError`` unless *width* is a supported SIMD width."""
    if width not in VALID_SIMD_WIDTHS:
        raise ValueError(
            f"unsupported SIMD width {width!r}; expected one of {VALID_SIMD_WIDTHS}"
        )


def clamp_mask(mask: int, width: int) -> int:
    """Return *mask* restricted to the low *width* bits.

    Negative masks are rejected because they have no hardware meaning.
    """
    if mask < 0:
        raise ValueError(f"execution mask must be non-negative, got {mask}")
    return mask & ((1 << width) - 1)


def popcount(mask: int) -> int:
    """Number of set bits in *mask* (number of enabled lanes)."""
    return mask.bit_count()


def active_lanes(mask: int, width: int) -> List[int]:
    """Indices of enabled lanes, in ascending lane order."""
    mask = clamp_mask(mask, width)
    return [i for i in range(width) if (mask >> i) & 1]


def num_quads(width: int) -> int:
    """Number of quads a *width*-wide instruction occupies.

    Sub-quad widths (SIMD1) still occupy a single execution cycle, hence a
    single quad.
    """
    validate_width(width)
    return max(1, width // QUAD_WIDTH)


def quad_masks(mask: int, width: int) -> List[int]:
    """Split *mask* into per-quad 4-bit masks, lowest quad first.

    >>> quad_masks(0xF0F0, 16)
    [0, 15, 0, 15]
    """
    mask = clamp_mask(mask, width)
    return [(mask >> (QUAD_WIDTH * q)) & 0xF for q in range(num_quads(width))]


def active_quads(mask: int, width: int) -> List[int]:
    """Indices of quads containing at least one enabled lane."""
    return [q for q, qm in enumerate(quad_masks(mask, width)) if qm]


def active_quad_count(mask: int, width: int) -> int:
    """``len(active_quads(mask, width))`` without building the list."""
    return sum(1 for qm in quad_masks(mask, width) if qm)


def optimal_cycles(mask: int, width: int) -> int:
    """Lower bound on execution cycles for *mask*: ``ceil(popcount / 4)``.

    This is the cycle count achieved by a perfect lane compactor (SCC);
    zero when the mask is empty.
    """
    mask = clamp_mask(mask, width)
    validate_width(width)
    return -(-popcount(mask) // QUAD_WIDTH)


def lane_of_quad(quad: int, lane_in_quad: int) -> int:
    """Global lane index of *lane_in_quad* (0-3) within *quad*."""
    if not 0 <= lane_in_quad < QUAD_WIDTH:
        raise ValueError(f"lane_in_quad must be in [0, 4), got {lane_in_quad}")
    return quad * QUAD_WIDTH + lane_in_quad


def lanes_by_position(mask: int, width: int) -> List[List[int]]:
    """Group active lanes by their position within the quad.

    Returns a list of four queues; queue *n* holds, in ascending quad
    order, the quad indices whose lane-position *n* is active.  This is
    the ``a_ln_q`` structure of the SCC algorithm (paper Figure 6).

    >>> lanes_by_position(0b0101_0101, 8)
    [[0, 1], [], [0, 1], []]
    """
    mask = clamp_mask(mask, width)
    queues: List[List[int]] = [[] for _ in range(QUAD_WIDTH)]
    for q, qm in enumerate(quad_masks(mask, width)):
        for n in range(QUAD_WIDTH):
            if (qm >> n) & 1:
                queues[n].append(q)
    return queues


def mask_from_lanes(lanes, width: int) -> int:
    """Build an execution mask from an iterable of lane indices."""
    validate_width(width)
    mask = 0
    for lane in lanes:
        if not 0 <= lane < width:
            raise ValueError(f"lane {lane} out of range for SIMD{width}")
        mask |= 1 << lane
    return mask


def split_halves(mask: int, width: int) -> Tuple[int, int]:
    """Return ``(lower_half, upper_half)`` of *mask* for an even *width*."""
    validate_width(width)
    if width < 2:
        raise ValueError("cannot split a SIMD1 mask into halves")
    half = width // 2
    mask = clamp_mask(mask, width)
    return mask & ((1 << half) - 1), mask >> half


def format_mask(mask: int, width: int) -> str:
    """Human-readable mask string, e.g. ``'0xF0F0 (....XXXX....XXXX)'``.

    Lane 0 is printed rightmost, matching the paper's hex notation.
    """
    mask = clamp_mask(mask, width)
    bits = "".join("X" if (mask >> i) & 1 else "." for i in reversed(range(width)))
    hex_digits = max(1, (width + 3) // 4)
    return f"0x{mask:0{hex_digits}X} ({bits})"
