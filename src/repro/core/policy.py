"""Compaction policies and the per-instruction execution-cycle model.

A :class:`CompactionPolicy` names one configuration of the EU execution
pipeline studied in the paper:

* ``RAW`` — hypothetical pre-Ivy-Bridge baseline: every quad of the
  instruction's SIMD width executes, enabled or not.  Used only for
  decomposing savings (paper Table 2).
* ``IVB`` — the paper's actual baseline: the hardware's pre-existing
  half-mask rewrite (Section 5.2) and nothing else.
* ``BCC`` — basic cycle compression: skip empty aligned quads.
* ``SCC`` — swizzled cycle compression: ``ceil(popcount/4)`` cycles.

:func:`execution_cycles` is the single place the rest of the system (EU
timing model, trace profiler, analytic tools) asks "how many ALU cycles
does this instruction take under policy P?".
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Dict

from .bcc import bcc_cycles
from .ivb import baseline_cycles, ivb_cycles
from .quads import clamp_mask, validate_width
from .scc import scc_cycles


class CompactionPolicy(enum.Enum):
    """Execution-cycle compression configuration of the EU pipeline."""

    RAW = "raw"
    IVB = "ivb"
    BCC = "bcc"
    SCC = "scc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Policies in strictly non-increasing cycle-count order.
POLICY_ORDER = (
    CompactionPolicy.RAW,
    CompactionPolicy.IVB,
    CompactionPolicy.BCC,
    CompactionPolicy.SCC,
)


def execution_cycles(
    mask: int,
    width: int,
    policy: CompactionPolicy,
    dtype_factor: int = 1,
    min_cycles: int = 0,
) -> int:
    """ALU execution cycles for one instruction under *policy*.

    Args:
        mask: execution mask (bit *i* set = lane *i* enabled).
        width: SIMD width of the instruction.
        policy: compaction configuration to model.
        dtype_factor: per-quad cycle multiplier for wide data types
            (2 for 64-bit operands).
        min_cycles: floor applied to the result.  The pure compression
            functions return 0 for a fully masked-off instruction; timing
            models that still charge an issue slot pass ``min_cycles=1``.

    Returns:
        Number of ALU cycles, ``>= min_cycles``.
    """
    return max(min_cycles, _cycles_memo(mask, width, policy, dtype_factor))


@lru_cache(maxsize=65536)
def _cycles_memo(mask: int, width: int, policy: CompactionPolicy,
                 dtype_factor: int) -> int:
    """Memoized policy cycle count (the simulator's hottest query)."""
    validate_width(width)
    mask = clamp_mask(mask, width)
    if policy is CompactionPolicy.RAW:
        return baseline_cycles(mask, width, dtype_factor)
    if policy is CompactionPolicy.IVB:
        return ivb_cycles(mask, width, dtype_factor)
    if policy is CompactionPolicy.BCC:
        return bcc_cycles(mask, width, dtype_factor)
    if policy is CompactionPolicy.SCC:
        return scc_cycles(mask, width, dtype_factor)
    raise ValueError(f"unknown policy {policy!r}")  # pragma: no cover


def cycles_all_policies(
    mask: int, width: int, dtype_factor: int = 1, min_cycles: int = 0
) -> Dict[CompactionPolicy, int]:
    """Execution cycles under every policy, as a dict.

    Guaranteed monotone: ``RAW >= IVB >= BCC >= SCC``.
    """
    return {
        policy: execution_cycles(mask, width, policy, dtype_factor, min_cycles)
        for policy in POLICY_ORDER
    }


def parse_policy(name: str) -> CompactionPolicy:
    """Parse a policy from its string name (case-insensitive).

    >>> parse_policy("scc")
    <CompactionPolicy.SCC: 'scc'>
    """
    try:
        return CompactionPolicy(name.lower())
    except ValueError:
        valid = ", ".join(p.value for p in CompactionPolicy)
        raise ValueError(f"unknown compaction policy {name!r}; expected one of: {valid}")
