"""Aggregation of compaction statistics over instruction streams.

The paper's figures are all derived from the same underlying measurement:
walk the dynamic instruction stream of a kernel (from the execution-driven
simulator or from a trace), look at each instruction's ``(width, mask,
dtype)``, and accumulate execution cycles under each compaction policy plus
the SIMD-utilization breakdown.  :class:`CompactionStats` is that
accumulator; both the simulator (:mod:`repro.gpu`) and the trace profiler
(:mod:`repro.trace.profiler`) feed it.

Derived quantities:

* **SIMD efficiency** (Figure 3): enabled lanes / issued lane slots.
* **Utilization buckets** (Figure 9): fraction of instructions with 1-4,
  5-8, 9-12, 13-16 active lanes (SIMD16) and 1-4, 5-8 (SIMD8).
* **EU-cycle reduction** (Figure 10, Table 4): percentage of IVB-baseline
  ALU cycles removed by BCC or SCC.
* **Register-file access savings** (Section 4.1 energy discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Tuple

from .bcc import baseline_register_accesses, bcc_register_accesses
from .policy import POLICY_ORDER, CompactionPolicy, execution_cycles
from .quads import clamp_mask, popcount, validate_width

#: SIMD-utilization buckets of paper Figure 9, as (width, lo, hi) -> label.
UTILIZATION_BUCKETS: Tuple[Tuple[int, int, int, str], ...] = (
    (16, 1, 4, "1-4/16"),
    (16, 5, 8, "5-8/16"),
    (16, 9, 12, "9-12/16"),
    (16, 13, 16, "13-16/16"),
    (8, 1, 4, "1-4/8"),
    (8, 5, 8, "5-8/8"),
)


def utilization_bucket(mask: int, width: int) -> str:
    """Label of the Figure 9 bucket for ``(mask, width)``.

    Widths other than 8/16 are labelled ``"<n>/<w>"`` so nothing is ever
    silently dropped; fully masked-off instructions bucket as ``"0/<w>"``.
    """
    active = popcount(clamp_mask(mask, width))
    for bucket_width, lo, hi, label in UTILIZATION_BUCKETS:
        if width == bucket_width and lo <= active <= hi:
            return label
    return f"{active}/{width}"


@dataclass
class CompactionStats:
    """Streaming accumulator of per-instruction compaction measurements.

    Args:
        min_cycles: issue-slot floor passed to
            :func:`repro.core.policy.execution_cycles`.  The cycle-level
            simulator uses 1 (a masked-off instruction still occupies its
            issue slot); pure analytic studies may use 0.
    """

    min_cycles: int = 1
    instructions: int = 0
    enabled_lane_slots: int = 0
    issued_lane_slots: int = 0
    cycles: Dict[CompactionPolicy, int] = field(
        default_factory=lambda: {p: 0 for p in POLICY_ORDER}
    )
    bucket_counts: Dict[str, int] = field(default_factory=dict)
    rf_accesses_baseline: int = 0
    rf_accesses_bcc: int = 0
    scc_swizzles: int = 0

    def record(
        self, mask: int, width: int, dtype_factor: int = 1, num_src: int = 2, num_dst: int = 1
    ) -> None:
        """Record one dynamically executed instruction."""
        active, cycles, label, active_quads, total_quads, swizzles = (
            _record_info(mask, width, dtype_factor, self.min_cycles)
        )
        self.instructions += 1
        self.enabled_lane_slots += active
        self.issued_lane_slots += width
        for policy, count in zip(POLICY_ORDER, cycles):
            self.cycles[policy] += count
        self.bucket_counts[label] = self.bucket_counts.get(label, 0) + 1
        operands = num_src + num_dst
        self.rf_accesses_baseline += total_quads * operands
        self.rf_accesses_bcc += active_quads * operands
        self.scc_swizzles += swizzles

    def record_bulk(
        self, mask: int, width: int, dtype_factor: int = 1, num_src: int = 2,
        num_dst: int = 1, count: int = 1,
    ) -> None:
        """Record *count* identical instructions in one call.

        Exactly equivalent to calling :meth:`record` *count* times —
        every counter update is linear in the event — but pays the
        per-event accounting once.  The fast engine aggregates each
        launch's functional trace into ``(signature, count)`` pairs and
        records them here, off the per-issue hot path.
        """
        active, cycles, label, active_quads, total_quads, swizzles = (
            _record_info(mask, width, dtype_factor, self.min_cycles)
        )
        self.instructions += count
        self.enabled_lane_slots += active * count
        self.issued_lane_slots += width * count
        for policy, cyc in zip(POLICY_ORDER, cycles):
            self.cycles[policy] += cyc * count
        self.bucket_counts[label] = self.bucket_counts.get(label, 0) + count
        operands = num_src + num_dst
        self.rf_accesses_baseline += total_quads * operands * count
        self.rf_accesses_bcc += active_quads * operands * count
        self.scc_swizzles += swizzles * count

    def record_stream(self, events: Iterable[Tuple[int, int]]) -> None:
        """Record an iterable of ``(mask, width)`` events."""
        for mask, width in events:
            self.record(mask, width)

    def merge(self, other: "CompactionStats") -> None:
        """Fold *other*'s counters into this accumulator."""
        if other.min_cycles != self.min_cycles:
            raise ValueError(
                f"cannot merge stats with different min_cycles "
                f"({self.min_cycles} vs {other.min_cycles})"
            )
        self.instructions += other.instructions
        self.enabled_lane_slots += other.enabled_lane_slots
        self.issued_lane_slots += other.issued_lane_slots
        for policy in POLICY_ORDER:
            self.cycles[policy] += other.cycles[policy]
        for label, count in other.bucket_counts.items():
            self.bucket_counts[label] = self.bucket_counts.get(label, 0) + count
        self.rf_accesses_baseline += other.rf_accesses_baseline
        self.rf_accesses_bcc += other.rf_accesses_bcc
        self.scc_swizzles += other.scc_swizzles

    # -- derived metrics ---------------------------------------------------

    @property
    def simd_efficiency(self) -> float:
        """Enabled lanes / issued lane slots over the whole stream (Fig. 3).

        1.0 for an empty stream by convention (an instruction-free kernel
        wastes nothing).
        """
        if self.issued_lane_slots == 0:
            return 1.0
        return self.enabled_lane_slots / self.issued_lane_slots

    def reduction_pct(
        self,
        policy: CompactionPolicy,
        baseline: CompactionPolicy = CompactionPolicy.IVB,
    ) -> float:
        """Percent of *baseline* ALU cycles removed by *policy*.

        This is the quantity plotted in Figure 10 and summarised in
        Table 4 ("EU cycles"), with the paper's convention of measuring
        beyond the existing Ivy Bridge optimization (``baseline=IVB``).
        """
        base = self.cycles[baseline]
        if base == 0:
            return 0.0
        return 100.0 * (base - self.cycles[policy]) / base

    def bucket_fractions(self) -> Dict[str, float]:
        """Fraction of instructions per utilization bucket (Fig. 9)."""
        if self.instructions == 0:
            return {}
        return {
            label: count / self.instructions
            for label, count in sorted(self.bucket_counts.items())
        }

    def rf_access_savings_pct(self) -> float:
        """Percent of half-register GRF accesses BCC suppresses (§4.1)."""
        if self.rf_accesses_baseline == 0:
            return 0.0
        saved = self.rf_accesses_baseline - self.rf_accesses_bcc
        return 100.0 * saved / self.rf_accesses_baseline

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics, convenient for report tables."""
        return {
            "instructions": float(self.instructions),
            "simd_efficiency": self.simd_efficiency,
            "cycles_raw": float(self.cycles[CompactionPolicy.RAW]),
            "cycles_ivb": float(self.cycles[CompactionPolicy.IVB]),
            "cycles_bcc": float(self.cycles[CompactionPolicy.BCC]),
            "cycles_scc": float(self.cycles[CompactionPolicy.SCC]),
            "bcc_reduction_pct": self.reduction_pct(CompactionPolicy.BCC),
            "scc_reduction_pct": self.reduction_pct(CompactionPolicy.SCC),
            "rf_access_savings_pct": self.rf_access_savings_pct(),
        }


@lru_cache(maxsize=65536)
def _record_info(mask: int, width: int, dtype_factor: int, min_cycles: int):
    """Memoized per-(mask, width) accounting for :meth:`CompactionStats.record`."""
    validate_width(width)
    mask = clamp_mask(mask, width)
    cycles = tuple(
        execution_cycles(mask, width, policy, dtype_factor, min_cycles)
        for policy in POLICY_ORDER
    )
    from .quads import active_quad_count, num_quads
    from .scc import scc_schedule

    return (
        popcount(mask),
        cycles,
        utilization_bucket(mask, width),
        active_quad_count(mask, width),
        num_quads(width),
        scc_schedule(mask, width).swizzle_count,
    )


def is_divergent(efficiency: float, threshold: float = 0.95) -> bool:
    """Paper's coherent/divergent split: divergent iff efficiency < 95 %."""
    if not 0.0 <= efficiency <= 1.0:
        raise ValueError(f"SIMD efficiency must be in [0, 1], got {efficiency}")
    return efficiency < threshold
