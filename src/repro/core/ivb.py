"""The pre-existing Ivy Bridge half-mask optimization.

Section 5.2 of the paper infers, via micro-benchmarking real hardware, that
Ivy Bridge EUs already contain a limited BCC-like optimization: a SIMD16
instruction whose **upper or lower eight lanes are all inactive** executes
in two cycles instead of four — i.e. it is treated as a SIMD8 instruction.

All BCC/SCC benefits in the paper are reported *over and above* this
optimization, so the library models it explicitly: :func:`ivb_effective`
rewrites an instruction's ``(width, mask)`` the way the hardware does, and
:func:`ivb_cycles` charges baseline multi-cycle execution on the rewritten
instruction.
"""

from __future__ import annotations

from typing import Tuple

from .quads import clamp_mask, num_quads, split_halves, validate_width

#: SIMD width at which the hardware applies the half-mask rewrite.
IVB_REWRITE_WIDTH = 16


def ivb_applicable(mask: int, width: int) -> bool:
    """True when the Ivy Bridge rewrite fires for ``(mask, width)``.

    The rewrite requires a SIMD16 instruction with a *non-empty* half and
    an empty other half.  A fully empty mask is not rewritten (there is
    nothing to execute either way).
    """
    validate_width(width)
    if width != IVB_REWRITE_WIDTH:
        return False
    lower, upper = split_halves(mask, width)
    return (lower == 0) != (upper == 0)


def ivb_effective(mask: int, width: int) -> Tuple[int, int]:
    """Rewrite ``(mask, width)`` as the Ivy Bridge hardware would.

    Returns the effective ``(width, mask)`` pair: a SIMD16 instruction
    with an empty upper (resp. lower) half becomes a SIMD8 instruction
    carrying the surviving half's mask.  Anything else is returned
    unchanged.

    >>> ivb_effective(0x00FF, 16)
    (8, 255)
    >>> ivb_effective(0xFF00, 16)
    (8, 255)
    >>> ivb_effective(0xF0F0, 16)
    (16, 61680)
    """
    mask = clamp_mask(mask, width)
    if not ivb_applicable(mask, width):
        return width, mask
    lower, upper = split_halves(mask, width)
    half_width = width // 2
    return half_width, (lower if lower else upper)


def ivb_cycles(mask: int, width: int, dtype_factor: int = 1) -> int:
    """Baseline execution cycles with only the IVB rewrite applied.

    The instruction executes all quads of its (possibly rewritten) width,
    regardless of which lanes inside those quads are enabled.
    ``dtype_factor`` scales the per-quad cycle cost for wide data types
    (2 for 64-bit operands, 1 otherwise) — see paper Section 4.1.
    """
    if dtype_factor < 1:
        raise ValueError(f"dtype_factor must be >= 1, got {dtype_factor}")
    eff_width, _eff_mask = ivb_effective(mask, width)
    return num_quads(eff_width) * dtype_factor


def baseline_cycles(mask: int, width: int, dtype_factor: int = 1) -> int:
    """Execution cycles with no optimization at all (pre-IVB baseline).

    Used only for decomposing savings into "IVB part" and "BCC/SCC part"
    (paper Table 2); the paper's reported results never use this as the
    comparison point.
    """
    if dtype_factor < 1:
        raise ValueError(f"dtype_factor must be >= 1, got {dtype_factor}")
    clamp_mask(mask, width)
    return num_quads(width) * dtype_factor
