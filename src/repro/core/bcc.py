"""Basic Cycle Compression (BCC), paper Sections 3.1 and 4.1.

BCC suppresses the quad micro-ops of a multi-cycle SIMD instruction whose
four lanes are **all disabled** by the execution mask.  For the SIMD16
example of Section 4.1::

    ADD(16) R12, R8, R10   [exec mask 0xF0F0]

the macro-instruction expands into four quartile micro-ops ``ADD.Q0`` ..
``ADD.Q3``; with mask ``0xF0F0`` quads 0 and 2 are empty, so BCC issues
only ``ADD.Q1`` and ``ADD.Q3`` — two cycles instead of four, and the
corresponding operand fetches and write-backs are suppressed as well
(register-file energy savings).

BCC subsumes the pre-existing Ivy Bridge half-mask rewrite: an empty
upper/lower SIMD16 half is exactly two empty aligned quads.  The paper
reports BCC benefit *beyond* the IVB rewrite, which this module supports
by exposing both the raw cycle count and the micro-op schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .quads import (
    QUAD_WIDTH,
    active_quad_count,
    active_quads,
    clamp_mask,
    num_quads,
    quad_masks,
    validate_width,
)


@dataclass(frozen=True)
class QuadOp:
    """One quartile micro-op issued to the 4-wide ALU.

    Attributes:
        quad: index of the source quad within the macro-instruction
            (identifies the 128-bit register sub-field accessed).
        lane_enable: 4-bit enable mask for the lanes inside the quad;
            lanes disabled here are predicated off inside the ALU.
    """

    quad: int
    lane_enable: int

    def __post_init__(self) -> None:
        if self.quad < 0:
            raise ValueError(f"quad index must be non-negative, got {self.quad}")
        if not 0 <= self.lane_enable <= 0xF:
            raise ValueError(f"lane_enable must be a 4-bit mask, got {self.lane_enable}")


@dataclass(frozen=True)
class BccSchedule:
    """Result of BCC analysis for one instruction.

    Attributes:
        width: SIMD width of the analysed instruction.
        mask: execution mask the schedule was computed for.
        ops: quartile micro-ops actually issued, in quad order.
        suppressed: quad indices whose micro-op (and operand
            fetch/write-back) is suppressed.
    """

    width: int
    mask: int
    ops: Tuple[QuadOp, ...]
    suppressed: Tuple[int, ...]

    @property
    def cycles(self) -> int:
        """Execution cycles consumed (one per issued quad micro-op)."""
        return len(self.ops)

    @property
    def fetches_saved(self) -> int:
        """Operand-fetch/write-back quad accesses saved vs. the baseline."""
        return len(self.suppressed)


def bcc_schedule(mask: int, width: int) -> BccSchedule:
    """Compute the BCC micro-op schedule for ``(mask, width)``.

    Empty quads are suppressed; every non-empty quad issues one micro-op
    with its original lane-enable bits (no lane movement — BCC never
    swizzles).
    """
    validate_width(width)
    mask = clamp_mask(mask, width)
    ops: List[QuadOp] = []
    suppressed: List[int] = []
    for q, qm in enumerate(quad_masks(mask, width)):
        if qm:
            ops.append(QuadOp(quad=q, lane_enable=qm))
        else:
            suppressed.append(q)
    return BccSchedule(width=width, mask=mask, ops=tuple(ops), suppressed=tuple(suppressed))


def bcc_cycles(mask: int, width: int, dtype_factor: int = 1) -> int:
    """Execution cycles under BCC: one per non-empty quad.

    A fully masked-off instruction costs zero execution cycles (the issue
    slot is reused for the next instruction, per Section 3.1); timing
    models that still charge a decode/issue cycle should clamp externally.
    """
    if dtype_factor < 1:
        raise ValueError(f"dtype_factor must be >= 1, got {dtype_factor}")
    return active_quad_count(mask, width) * dtype_factor


def bcc_compressible_cycles(mask: int, width: int) -> int:
    """Number of quad cycles BCC removes relative to the raw baseline."""
    clamp_mask(mask, width)
    return num_quads(width) - active_quad_count(mask, width)


def bcc_issued_quads(mask: int, width: int) -> List[int]:
    """Quad indices whose micro-ops BCC issues (convenience wrapper)."""
    return active_quads(mask, width)


def bcc_register_accesses(mask: int, width: int, num_src: int = 2, num_dst: int = 1) -> int:
    """Half-register (128-bit) GRF accesses performed under BCC.

    The BCC register file (paper Figure 5b) fetches 128-bit half
    registers, one per issued quad per operand.  Used by the energy
    accounting in :mod:`repro.core.stats`.
    """
    if num_src < 0 or num_dst < 0:
        raise ValueError("operand counts must be non-negative")
    return active_quad_count(mask, width) * (num_src + num_dst)


def baseline_register_accesses(width: int, num_src: int = 2, num_dst: int = 1) -> int:
    """Half-register GRF accesses for the unoptimized baseline."""
    if num_src < 0 or num_dst < 0:
        raise ValueError("operand counts must be non-negative")
    return num_quads(width) * (num_src + num_dst)


def is_bcc_friendly(mask: int, width: int) -> bool:
    """True when BCC alone already achieves the optimal cycle count.

    This is the ``a_q_cnt == o_cyc_cnt`` early-out of the SCC algorithm
    (paper Figure 6): the active lanes are already packed into as few
    quads as a perfect compactor could use, so no swizzling is needed.
    """
    from .quads import optimal_cycles  # local import avoids cycle at module load

    return active_quad_count(mask, width) == optimal_cycles(mask, width)
