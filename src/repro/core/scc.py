"""Swizzled Cycle Compression (SCC), paper Sections 3.2 and 4.2.

SCC generalizes BCC: when the disabled lanes of an instruction are not
grouped into aligned quads, SCC *swizzles* (permutes) lane positions so
that the enabled lanes pack into ``ceil(popcount / 4)`` quads — the
optimal cycle count — and executes only those.  Operands are routed
through per-quad 4x4 crossbars onto the 4-wide ALU datapath (paper
Figure 5c); results are unswizzled (the inverse permutation) before
write-back.

This module implements the control-logic algorithm of paper Figure 6
faithfully:

1. Build per-lane-position queues ``a_ln_q[n]``: the quads whose lane
   position *n* is active.
2. If the number of active quads already equals the optimal cycle count,
   fall back to BCC-style empty-quad skipping (no swizzles).
3. Otherwise compute each lane position's *surplus* (occupancy beyond the
   optimal cycle count).  In every output cycle, each of the four ALU
   lane slots is filled from its own queue when possible (no swizzle), or
   from a surplus lane position (one intra-quad swizzle), or left
   disabled when no work remains.

The resulting :class:`SccSchedule` records, per cycle, exactly which
``(quad, source_lane)`` element drives each ALU lane slot, which is what
the operand-crossbar settings and write-back unswizzle settings are
derived from.  The schedule is validated to be a partition of the active
lanes; the worked example of paper Figure 7 is covered by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .bcc import bcc_schedule
from .quads import (
    QUAD_WIDTH,
    active_quad_count,
    clamp_mask,
    lane_of_quad,
    lanes_by_position,
    optimal_cycles,
    popcount,
    validate_width,
)


@dataclass(frozen=True)
class LaneSlot:
    """One ALU lane slot assignment in one SCC execution cycle.

    Attributes:
        quad: source quad index within the macro-instruction.
        src_lane: lane position (0-3) of the element inside its quad.
        out_lane: ALU lane slot (0-3) the element is routed to.
    """

    quad: int
    src_lane: int
    out_lane: int

    @property
    def swizzled(self) -> bool:
        """True when the element moved off its home lane position."""
        return self.src_lane != self.out_lane

    @property
    def global_lane(self) -> int:
        """Global lane index of the element within the instruction."""
        return lane_of_quad(self.quad, self.src_lane)


@dataclass(frozen=True)
class SccSchedule:
    """Complete SCC execution schedule for one instruction.

    Attributes:
        width: SIMD width of the analysed instruction.
        mask: execution mask the schedule was computed for.
        cycles: tuple of execution cycles; each cycle is a tuple of up to
            four :class:`LaneSlot` assignments (disabled slots omitted).
        bcc_only: True when the empty-quad early-out fired and no
            swizzling was needed.
    """

    width: int
    mask: int
    cycles: Tuple[Tuple[LaneSlot, ...], ...]
    bcc_only: bool

    @property
    def cycle_count(self) -> int:
        """Execution cycles consumed by the instruction under SCC."""
        return len(self.cycles)

    @property
    def swizzle_count(self) -> int:
        """Total number of intra-quad lane swizzles across all cycles."""
        return sum(1 for cycle in self.cycles for slot in cycle if slot.swizzled)

    def covered_lanes(self) -> List[int]:
        """Global lane indices executed, in schedule order."""
        return [slot.global_lane for cycle in self.cycles for slot in cycle]

    def unswizzle_settings(self) -> Tuple[Tuple[Tuple[int, int, int], ...], ...]:
        """Per-cycle write-back routing: ``(out_lane -> (quad, dst_lane))``.

        The write-back path applies the inverse permutation of the operand
        swizzle (paper Section 4.2): each ALU output lane's result is
        steered back to its element's home ``(quad, lane)`` register
        position.  Returned as, per cycle, tuples of
        ``(out_lane, quad, dst_lane)``.
        """
        return tuple(
            tuple((slot.out_lane, slot.quad, slot.src_lane) for slot in cycle)
            for cycle in self.cycles
        )


def _bcc_fallback_schedule(mask: int, width: int) -> SccSchedule:
    """Build an :class:`SccSchedule` for the no-swizzle early-out case."""
    cycles: List[Tuple[LaneSlot, ...]] = []
    for op in bcc_schedule(mask, width).ops:
        slots = tuple(
            LaneSlot(quad=op.quad, src_lane=n, out_lane=n)
            for n in range(QUAD_WIDTH)
            if (op.lane_enable >> n) & 1
        )
        cycles.append(slots)
    return SccSchedule(width=width, mask=mask, cycles=tuple(cycles), bcc_only=True)


def scc_schedule(mask: int, width: int) -> SccSchedule:
    """Run the paper's SCC control algorithm (Figure 6) on ``(mask, width)``.

    Deterministic: surplus donors are drained lowest-lane-position first,
    and queues are consumed in ascending quad order, matching the worked
    example of paper Figure 7.
    """
    validate_width(width)
    mask = clamp_mask(mask, width)

    o_cyc_cnt = optimal_cycles(mask, width)
    if o_cyc_cnt == 0:
        return SccSchedule(width=width, mask=mask, cycles=(), bcc_only=True)

    a_q_cnt = active_quad_count(mask, width)
    if a_q_cnt == o_cyc_cnt:
        # Active lanes already pack into the minimal number of quads:
        # plain empty-quad skipping achieves the optimum (BCC-like path).
        return _bcc_fallback_schedule(mask, width)

    # --- initial setup (paper Figure 6, "else" branch) -------------------
    a_ln_q = lanes_by_position(mask, width)  # queues of quads, per lane position
    heads = [0, 0, 0, 0]  # dequeue cursors into a_ln_q[n]
    surplus = [max(0, len(a_ln_q[n]) - o_cyc_cnt) for n in range(QUAD_WIDTH)]
    tot_surplus = sum(surplus)

    cycles: List[Tuple[LaneSlot, ...]] = []
    for _cycle in range(o_cyc_cnt):
        slots: List[LaneSlot] = []
        for n in range(QUAD_WIDTH):
            if heads[n] < len(a_ln_q[n]):
                # Home lane has its own work: no swizzle.
                quad = a_ln_q[n][heads[n]]
                heads[n] += 1
                slots.append(LaneSlot(quad=quad, src_lane=n, out_lane=n))
            elif tot_surplus > 0:
                # Steal from the first surplus lane position that still
                # has queued work: one intra-quad swizzle (m -> n).
                for m in range(QUAD_WIDTH):
                    if surplus[m] > 0 and heads[m] < len(a_ln_q[m]):
                        quad = a_ln_q[m][heads[m]]
                        heads[m] += 1
                        surplus[m] -= 1
                        tot_surplus -= 1
                        slots.append(LaneSlot(quad=quad, src_lane=m, out_lane=n))
                        break
                # If no donor was found the slot stays disabled this cycle;
                # remaining surplus will be drained in later cycles.
            # else: no surplus anywhere -- lane slot disabled this cycle.
        cycles.append(tuple(slots))

    schedule = SccSchedule(width=width, mask=mask, cycles=tuple(cycles), bcc_only=False)
    _validate_schedule(schedule)
    return schedule


def _validate_schedule(schedule: SccSchedule) -> None:
    """Internal invariant check: the schedule partitions the active lanes.

    Every active lane must be executed exactly once, no inactive lane may
    be executed, and within a cycle each ALU output slot may be driven by
    at most one element (the wired-OR bus constraint of Figure 5c).
    """
    seen = schedule.covered_lanes()
    expected = [i for i in range(schedule.width) if (schedule.mask >> i) & 1]
    if sorted(seen) != expected:
        raise AssertionError(
            f"SCC schedule does not partition active lanes: got {sorted(seen)}, "
            f"expected {expected} (mask=0x{schedule.mask:X}, width={schedule.width})"
        )
    for cycle in schedule.cycles:
        outs = [slot.out_lane for slot in cycle]
        if len(outs) != len(set(outs)):
            raise AssertionError(f"ALU output slot driven twice in one cycle: {cycle}")


def scc_cycles(mask: int, width: int, dtype_factor: int = 1) -> int:
    """Execution cycles under SCC: ``ceil(active_lanes / 4)``.

    Zero for a fully masked-off instruction (see :func:`repro.core.bcc.bcc_cycles`
    for the clamping convention).
    """
    if dtype_factor < 1:
        raise ValueError(f"dtype_factor must be >= 1, got {dtype_factor}")
    return optimal_cycles(mask, width) * dtype_factor


def scc_additional_savings(mask: int, width: int) -> int:
    """Quad cycles SCC saves beyond what BCC already saves."""
    return active_quad_count(mask, width) - optimal_cycles(mask, width)


def swizzle_settings_for_cycle(
    cycle: Tuple[LaneSlot, ...],
) -> List[Optional[Tuple[int, int]]]:
    """Crossbar settings for one execution cycle.

    Returns a list indexed by ALU output lane (0-3): ``(quad, src_lane)``
    for driven slots, ``None`` for disabled ones.  This is the hardware
    control word the SCC logic would latch alongside the operand
    (paper Figure 7, "lanes swizzled / lanes enabled" rows).
    """
    settings: List[Optional[Tuple[int, int]]] = [None] * QUAD_WIDTH
    for slot in cycle:
        if settings[slot.out_lane] is not None:
            raise ValueError(f"output lane {slot.out_lane} driven twice in {cycle}")
        settings[slot.out_lane] = (slot.quad, slot.src_lane)
    return settings
