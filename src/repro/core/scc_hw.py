"""Hardware control-word encoding for the SCC datapath.

Paper Figure 5(c) shows the SCC operand path: a 512-bit operand latch
feeding four per-quad 4x4 crossbars whose outputs wire-OR onto the
128-bit ALU bus.  Each execution cycle the control logic must therefore
supply, per ALU output lane (4 of them):

* a 1-bit **enable**,
* a **quad select** (2 bits for SIMD16: which quad's crossbar drives
  this output slot), and
* a **source-lane select** (2 bits: which lane within that quad).

That is 5 bits per output lane, 20 bits per cycle — this module packs
the :class:`~repro.core.scc.SccSchedule` into exactly that word, and
unpacks it back, giving the bit-accurate control stream a hardware
implementation would latch (the "lanes swizzled / lanes enabled" rows of
paper Figure 7).  The write-back unswizzle settings are the same words
read in the inverse direction, so no separate encoding is needed.

Word layout (per output lane ``n``, field base ``5*n``)::

    bit 5n+0      enable
    bits 5n+1..2  src_lane (0-3)
    bits 5n+3..4  quad — stored modulo 4; wider-than-SIMD16
                  instructions carry the quad's high bits implicitly in
                  the cycle index (cycle c only ever reads quads that
                  still have queued work, and the decoder is given the
                  schedule width).

For SIMD widths above 16 the 2-bit quad field is insufficient, so the
encoder widens the quad field to ``ceil(log2(num_quads))`` bits and
reports the per-lane field width; SIMD16 and below always use the
5-bit-per-lane layout above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .quads import QUAD_WIDTH, num_quads, validate_width
from .scc import LaneSlot, SccSchedule, scc_schedule


def _quad_bits(width: int) -> int:
    """Bits needed to name a quad of a *width*-wide instruction."""
    quads = num_quads(width)
    bits = 1
    while (1 << bits) < quads:
        bits += 1
    return bits


@dataclass(frozen=True)
class ControlWord:
    """One cycle's packed crossbar/enable settings."""

    width: int  # SIMD width of the instruction
    value: int  # packed bits

    @property
    def bits_per_lane(self) -> int:
        return 1 + 2 + _quad_bits(self.width)

    def lane_fields(self) -> List[Optional[Tuple[int, int]]]:
        """Per output lane: ``(quad, src_lane)`` or None when disabled."""
        per_lane = self.bits_per_lane
        quad_bits = _quad_bits(self.width)
        fields: List[Optional[Tuple[int, int]]] = []
        for lane in range(QUAD_WIDTH):
            chunk = (self.value >> (per_lane * lane)) & ((1 << per_lane) - 1)
            enable = chunk & 1
            if not enable:
                fields.append(None)
                continue
            src_lane = (chunk >> 1) & 0x3
            quad = (chunk >> 3) & ((1 << quad_bits) - 1)
            fields.append((quad, src_lane))
        return fields


def encode_cycle(cycle: Tuple[LaneSlot, ...], width: int) -> ControlWord:
    """Pack one SCC schedule cycle into its hardware control word."""
    validate_width(width)
    quad_bits = _quad_bits(width)
    per_lane = 1 + 2 + quad_bits
    value = 0
    seen = set()
    for slot in cycle:
        if slot.out_lane in seen:
            raise ValueError(f"output lane {slot.out_lane} driven twice")
        seen.add(slot.out_lane)
        chunk = 1 | (slot.src_lane << 1) | (slot.quad << 3)
        value |= chunk << (per_lane * slot.out_lane)
    return ControlWord(width=width, value=value)


def decode_cycle(word: ControlWord) -> Tuple[LaneSlot, ...]:
    """Unpack a control word back into lane-slot assignments."""
    slots = []
    for out_lane, field in enumerate(word.lane_fields()):
        if field is None:
            continue
        quad, src_lane = field
        slots.append(LaneSlot(quad=quad, src_lane=src_lane, out_lane=out_lane))
    return tuple(slots)


def encode_schedule(schedule: SccSchedule) -> List[ControlWord]:
    """Control words for every cycle of *schedule*, in issue order."""
    return [encode_cycle(cycle, schedule.width) for cycle in schedule.cycles]


def control_stream(mask: int, width: int) -> List[ControlWord]:
    """Convenience: SCC control words straight from an execution mask."""
    return encode_schedule(scc_schedule(mask, width))


def control_bits_per_instruction(width: int) -> int:
    """Worst-case control-store bits one instruction needs under SCC.

    ``cycles x lanes x bits_per_lane`` at the optimal (full) cycle
    count — the quantity a designer would size the control pipeline
    stage for (paper Section 4.3's control-complexity discussion).
    """
    validate_width(width)
    per_lane = 1 + 2 + _quad_bits(width)
    return num_quads(width) * QUAD_WIDTH * per_lane
