"""KernelBuilder: a small assembler DSL for writing EU kernels in Python.

The builder plays the role of the OpenCL compiler in the paper's flow: it
produces finalized :class:`~repro.isa.program.Program` objects that the
simulator dispatches.  It manages GRF allocation (including the implicit
multi-register spans of wide-SIMD operands), kernel argument binding, and
structured control flow::

    b = KernelBuilder("axpy", simd_width=16)
    gid = b.global_id()
    x_surf = b.surface_arg("x")
    y_surf = b.surface_arg("y")
    a = b.scalar_arg("a", DType.F32)
    addr = b.vreg(DType.I32)
    b.shl(addr, gid, 2)                       # byte offsets
    x = b.vreg(DType.F32)
    b.load(x, addr, x_surf)
    y = b.vreg(DType.F32)
    b.load(y, addr, y_surf)
    b.mad(y, x, a, y)                         # y = a*x + y
    b.store(y, addr, y_surf)
    program = b.finish()

Control flow uses flags and context managers::

    f = b.cmp(CmpOp.LT, x, 0.0)
    with b.if_(f):
        ...                                   # then block
        b.else_()
        ...                                   # optional else block

    b.do_()
    ...
    f = b.cmp(CmpOp.GT, counter, 0)
    b.while_(f)
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Union

from ..errors import BuildError
from .instruction import Instruction
from .opcodes import Opcode
from .program import KernelParam, ParamKind, Program
from .registers import NUM_FLAGS, NUM_GRF_REGS, FlagRef, Imm, Operand, RegRef, as_operand
from .types import CmpOp, DType

#: Anything a convenience method accepts as a source.
SourceLike = Union[RegRef, Imm, int, float]

#: Opcodes whose operands must be integer-typed (bitwise/shift family);
#: numpy raises at simulation time if these ever see float lanes, so the
#: builder rejects the misuse at construction time instead.
_INTEGER_ONLY_OPCODES = frozenset(
    (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.SHR)
)


class KernelBuilder:
    """Incremental assembler for one kernel program.

    Misuse (dtype, surface, flag, or control-flow errors) raises a typed
    :class:`~repro.errors.BuildError` carrying the kernel name and — for
    failures attributable to one instruction — its index in the program.
    """

    def __init__(self, name: str, simd_width: int, slm_bytes: int = 0) -> None:
        if simd_width not in (1, 4, 8, 16, 32):
            raise BuildError(f"unsupported SIMD width {simd_width}",
                             kernel=name)
        self.name = name
        self.simd_width = simd_width
        self.slm_bytes = slm_bytes
        self._instructions: List[Instruction] = []
        self._params: List[KernelParam] = []
        self._next_reg = 0
        self._next_surface = 0
        self._gid: Optional[RegRef] = None
        self._lid: Optional[RegRef] = None
        self._finished = False
        # Released temp spans by size, reusable by .temp() — the DSL
        # lowering churns through short-lived expression temporaries and
        # would exhaust the GRF without reuse.
        self._free_spans: Dict[int, List[int]] = {}

    def _error(self, message: str, at_instruction: Optional[int] = None) -> BuildError:
        return BuildError(message, kernel=self.name,
                          instruction_index=at_instruction)

    # -- register and argument allocation ---------------------------------

    def _alloc(self, dtype: DType, width: Optional[int] = None) -> RegRef:
        width = width if width is not None else self.simd_width
        span = dtype.regs_for_width(width)
        if self._next_reg + span > NUM_GRF_REGS:
            raise self._error(
                f"exhausted the GRF "
                f"({self._next_reg + span} > {NUM_GRF_REGS} registers)"
            )
        ref = RegRef(self._next_reg, dtype)
        self._next_reg += span
        return ref

    def temp(self, dtype: DType = DType.F32) -> RegRef:
        """Allocate a scratch register, reusing a released span if one fits."""
        span = dtype.regs_for_width(self.simd_width)
        free = self._free_spans.get(span)
        if free:
            return RegRef(free.pop(), dtype)
        return self._alloc(dtype)

    def release(self, ref: RegRef) -> None:
        """Return a :meth:`temp` register span to the free pool."""
        span = ref.dtype.regs_for_width(self.simd_width)
        self._free_spans.setdefault(span, []).append(ref.reg)

    def vreg(self, dtype: DType = DType.F32) -> RegRef:
        """Allocate a fresh SIMD-width virtual register."""
        return self._alloc(dtype)

    def global_id(self) -> RegRef:
        """Per-lane global work-item id (dispatch payload, I32)."""
        if self._gid is None:
            self._gid = self._alloc(DType.I32)
        return self._gid

    def local_id(self) -> RegRef:
        """Per-lane local (within-workgroup) work-item id (I32)."""
        if self._lid is None:
            self._lid = self._alloc(DType.I32)
        return self._lid

    def scalar_arg(self, name: str, dtype: DType = DType.F32) -> RegRef:
        """Declare a scalar kernel argument, broadcast across all lanes."""
        self._check_param_name(name)
        ref = self._alloc(dtype)
        kind = ParamKind.SCALAR_F32 if dtype.is_float else ParamKind.SCALAR_I32
        self._params.append(KernelParam(name=name, kind=kind, reg=ref.reg))
        return ref

    @property
    def num_surfaces(self) -> int:
        """Number of surface (buffer) arguments declared so far."""
        return self._next_surface

    def surface_arg(self, name: str) -> int:
        """Declare a buffer argument; returns its binding-table index."""
        self._check_param_name(name)
        index = self._next_surface
        self._next_surface += 1
        self._params.append(
            KernelParam(name=name, kind=ParamKind.SURFACE, surface_index=index)
        )
        return index

    def _check_param_name(self, name: str) -> None:
        if any(p.name == name for p in self._params):
            raise self._error(f"duplicate kernel parameter {name!r}")

    # -- instruction emission ----------------------------------------------

    def emit(self, inst: Instruction) -> Instruction:
        """Append a raw instruction (escape hatch for tests/tools).

        Validates structural well-formedness eagerly so a misused opcode
        fails at the call site, with the instruction index, instead of
        surfacing later as a bare ``ValueError`` from finalization.
        """
        if self._finished:
            raise self._error("cannot emit into a finished kernel")
        index = len(self._instructions)
        try:
            inst.validate()
        except ValueError as exc:
            raise self._error(str(exc), at_instruction=index) from exc
        if inst.opcode in _INTEGER_ONLY_OPCODES and inst.dtype.is_float:
            raise self._error(
                f"{inst.opcode.mnemonic} requires an integer dtype, "
                f"got {inst.dtype.label}", at_instruction=index)
        if inst.opcode in (Opcode.LOAD, Opcode.STORE) and not (
                0 <= inst.surface < self._next_surface):
            raise self._error(
                f"surface {inst.surface} is not a declared buffer argument "
                f"({self._next_surface} declared)", at_instruction=index)
        for flag in (inst.pred, inst.flag_dst):
            if flag is not None and not 0 <= flag.index < NUM_FLAGS:
                raise self._error(
                    f"flag f{flag.index} out of range (have {NUM_FLAGS})",
                    at_instruction=index)
        self._instructions.append(inst)
        return inst

    def alu(
        self,
        opcode: Opcode,
        dst: RegRef,
        *sources: SourceLike,
        pred: Optional[FlagRef] = None,
        width: Optional[int] = None,
    ) -> RegRef:
        """Emit a generic ALU instruction; dtype comes from *dst*."""
        dtype = dst.dtype
        inst = Instruction(
            opcode=opcode,
            width=width if width is not None else self.simd_width,
            dtype=dtype,
            dst=dst,
            sources=tuple(as_operand(s, dtype) for s in sources),
            pred=pred,
        )
        self.emit(inst)
        return dst

    # Convenience wrappers for the common opcodes.  Each returns dst so
    # kernels can chain expressions.

    def mov(self, dst: RegRef, src: SourceLike, pred: Optional[FlagRef] = None) -> RegRef:
        return self.alu(Opcode.MOV, dst, src, pred=pred)

    def add(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.ADD, dst, a, b, pred=pred)

    def sub(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.SUB, dst, a, b, pred=pred)

    def mul(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.MUL, dst, a, b, pred=pred)

    def mad(self, dst: RegRef, a: SourceLike, b: SourceLike, c: SourceLike, pred=None) -> RegRef:
        """dst = a * b + c (fused multiply-add)."""
        return self.alu(Opcode.MAD, dst, a, b, c, pred=pred)

    def min_(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.MIN, dst, a, b, pred=pred)

    def max_(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.MAX, dst, a, b, pred=pred)

    def abs_(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.ABS, dst, a, pred=pred)

    def floor(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.FLOOR, dst, a, pred=pred)

    def and_(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.AND, dst, a, b, pred=pred)

    def or_(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.OR, dst, a, b, pred=pred)

    def xor(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.XOR, dst, a, b, pred=pred)

    def not_(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.NOT, dst, a, pred=pred)

    def shl(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.SHL, dst, a, b, pred=pred)

    def shr(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.SHR, dst, a, b, pred=pred)

    def div(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.DIV, dst, a, b, pred=pred)

    def sqrt(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.SQRT, dst, a, pred=pred)

    def rsqrt(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.RSQRT, dst, a, pred=pred)

    def sin(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.SIN, dst, a, pred=pred)

    def cos(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.COS, dst, a, pred=pred)

    def exp(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.EXP, dst, a, pred=pred)

    def log(self, dst: RegRef, a: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.LOG, dst, a, pred=pred)

    def pow_(self, dst: RegRef, a: SourceLike, b: SourceLike, pred=None) -> RegRef:
        return self.alu(Opcode.POW, dst, a, b, pred=pred)

    def cvt(self, dst: RegRef, src: RegRef, pred: Optional[FlagRef] = None) -> RegRef:
        """Convert *src* (its own dtype) into *dst*'s dtype."""
        inst = Instruction(
            opcode=Opcode.CVT,
            width=self.simd_width,
            dtype=dst.dtype,
            dst=dst,
            sources=(src,),
            src_dtype=src.dtype,
            pred=pred,
        )
        self.emit(inst)
        return dst

    def cmp(
        self,
        op: CmpOp,
        a: SourceLike,
        b: SourceLike,
        flag: Optional[FlagRef] = None,
        dtype: Optional[DType] = None,
        pred: Optional[FlagRef] = None,
    ) -> FlagRef:
        """Compare *a* and *b*, writing flag f0 (or *flag*); returns it."""
        flag = flag if flag is not None else FlagRef(0)
        if dtype is None:
            dtype = a.dtype if isinstance(a, (RegRef, Imm)) else DType.F32
        inst = Instruction(
            opcode=Opcode.CMP,
            width=self.simd_width,
            dtype=dtype,
            sources=(as_operand(a, dtype), as_operand(b, dtype)),
            flag_dst=flag,
            cmp_op=op,
            pred=pred,
        )
        self.emit(inst)
        return flag

    def sel(self, dst: RegRef, flag: FlagRef, a: SourceLike, b: SourceLike) -> RegRef:
        """dst = flag ? a : b, per lane."""
        dtype = dst.dtype
        inst = Instruction(
            opcode=Opcode.SEL,
            width=self.simd_width,
            dtype=dtype,
            dst=dst,
            sources=(as_operand(a, dtype), as_operand(b, dtype)),
            pred=flag,
        )
        self.emit(inst)
        return dst

    # -- memory -------------------------------------------------------------

    def load(self, dst: RegRef, addr: RegRef, surface: int, pred=None) -> RegRef:
        """Gather *dst* lanes from per-lane byte offsets in *addr*."""
        inst = Instruction(
            opcode=Opcode.LOAD,
            width=self.simd_width,
            dtype=dst.dtype,
            dst=dst,
            sources=(addr,),
            surface=surface,
            pred=pred,
        )
        self.emit(inst)
        return dst

    def store(self, src: RegRef, addr: RegRef, surface: int, pred=None) -> None:
        """Scatter *src* lanes to per-lane byte offsets in *addr*."""
        inst = Instruction(
            opcode=Opcode.STORE,
            width=self.simd_width,
            dtype=src.dtype,
            sources=(addr, src),
            surface=surface,
            pred=pred,
        )
        self.emit(inst)

    def load_slm(self, dst: RegRef, addr: RegRef, pred=None) -> RegRef:
        """Gather from shared local memory (per-lane byte offsets)."""
        inst = Instruction(
            opcode=Opcode.LOAD_SLM,
            width=self.simd_width,
            dtype=dst.dtype,
            dst=dst,
            sources=(addr,),
            pred=pred,
        )
        self.emit(inst)
        return dst

    def store_slm(self, src: RegRef, addr: RegRef, pred=None) -> None:
        """Scatter to shared local memory (per-lane byte offsets)."""
        inst = Instruction(
            opcode=Opcode.STORE_SLM,
            width=self.simd_width,
            dtype=src.dtype,
            sources=(addr, src),
            pred=pred,
        )
        self.emit(inst)

    def barrier(self) -> None:
        """Workgroup barrier."""
        self.emit(Instruction(opcode=Opcode.BARRIER, width=self.simd_width))

    # -- control flow --------------------------------------------------------

    def IF(self, flag: FlagRef) -> None:
        self.emit(Instruction(opcode=Opcode.IF, width=self.simd_width, pred=flag))

    def ELSE(self) -> None:
        self.emit(Instruction(opcode=Opcode.ELSE, width=self.simd_width))

    def ENDIF(self) -> None:
        self.emit(Instruction(opcode=Opcode.ENDIF, width=self.simd_width))

    @contextlib.contextmanager
    def if_(self, flag: FlagRef) -> Iterator[None]:
        """Structured IF block; call :meth:`else_` inside for an else arm."""
        self.IF(flag)
        yield
        self.ENDIF()

    def else_(self) -> None:
        """Switch to the else arm inside a ``with b.if_(...)`` block."""
        self.ELSE()

    def do_(self) -> None:
        """Open a loop (matches a later :meth:`while_`)."""
        self.emit(Instruction(opcode=Opcode.DO, width=self.simd_width))

    def while_(self, flag: FlagRef) -> None:
        """Close a loop: lanes with *flag* set iterate again."""
        self.emit(Instruction(opcode=Opcode.WHILE, width=self.simd_width, pred=flag))

    def break_(self, flag: FlagRef) -> None:
        """Lanes with *flag* set exit the innermost loop."""
        self.emit(Instruction(opcode=Opcode.BREAK, width=self.simd_width, pred=flag))

    # -- finalization ----------------------------------------------------------

    def finish(self) -> Program:
        """Append EOT, finalize control flow, and return the Program.

        Control-flow imbalance (an IF without ENDIF, a stray WHILE)
        surfaces here as a :class:`~repro.errors.BuildError`.
        """
        if self._finished:
            raise self._error("already finished")
        self.emit(Instruction(opcode=Opcode.EOT, width=self.simd_width))
        self._finished = True
        program = Program(
            name=self.name,
            simd_width=self.simd_width,
            instructions=self._instructions,
            params=self._params,
            slm_bytes=self.slm_bytes,
        )
        program.gid_reg = self._gid.reg if self._gid is not None else None
        program.lid_reg = self._lid.reg if self._lid is not None else None
        try:
            return program.finalize()
        except BuildError:
            raise
        except ValueError as exc:
            raise self._error(str(exc)) from exc
