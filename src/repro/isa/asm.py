"""Textual assembly format for EU kernel programs.

Lets kernels live as data files (and makes programs diffable in tests
and bug reports).  :func:`program_to_text` serializes any finalized
:class:`~repro.isa.program.Program`; :func:`assemble` parses the format
back, re-running control-flow finalization.  Round-tripping preserves
instruction semantics exactly.

Format by example::

    kernel axpy simd16 slm=0
    gid @r0
    param x: surface            ; binding-table index 0
    param y: surface            ; binding-table index 1
    param a: scalar_f32 @r4

        shl.i32 r2, r0, 2:i32
        load.f32 r6, r2, @surf0
        load.f32 r8, r2, @surf1
        mad.f32 r8, r6, r4, r8
        cmp.lt.f32 f0, r8, 100.0:f32
    (f0) mul.f32 r8, r8, 0.5:f32
        if f0
        else
        endif
        store.f32 r2, r8, @surf1
        eot

Conventions: one instruction per line; ``;`` starts a comment;
predicates prefix in parentheses (``(~f1)``); register operands are
``rN`` (element type comes from the opcode suffix); immediates carry
their type (``2.5:f32``, ``7:i32``); CVT spells both types
(``cvt.f32.i32 dst, src``); memory instructions name their surface as
``@surfN``; SLM accesses use ``load_slm``/``store_slm`` with no surface.
An instruction whose execution width differs from the program's SIMD
width carries a trailing ``.wN`` mnemonic suffix (``mov.f32.w8``), so
``assemble(program_to_text(p))`` reproduces every program bit-identically.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instruction import Instruction
from .opcodes import Opcode
from .program import KernelParam, ParamKind, Program
from .registers import FlagRef, Imm, RegRef
from .types import CmpOp, DType

_DTYPES = {d.label: d for d in DType}
_CMPS = {c.value: c for c in CmpOp}
_OPCODES = {op.mnemonic: op for op in Opcode}

_REG_RE = re.compile(r"^r(\d+)$")
_FLAG_RE = re.compile(r"^(~?)f([01])$")
_IMM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+\.?\d*(?:[eE][-+]?\d+)?)):(\w+)$")
_SURF_RE = re.compile(r"^@surf(\d+)$")


class AsmError(ValueError):
    """Raised on malformed assembly input, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _operand_to_text(op, dtype: DType) -> str:
    if isinstance(op, RegRef):
        return f"r{op.reg}"
    if isinstance(op, Imm):
        return f"{op.value}:{op.dtype.label}"
    raise TypeError(f"cannot serialize operand {op!r}")


def _instruction_to_text(inst: Instruction, program_width: Optional[int] = None) -> str:
    op = inst.opcode
    mnemonic = op.mnemonic
    if op is Opcode.CMP:
        mnemonic += f".{inst.cmp_op.value}.{inst.dtype.label}"
    elif op is Opcode.CVT:
        mnemonic += f".{inst.dtype.label}.{inst.src_dtype.label}"
    elif op.writes_dst or op.is_memory:
        mnemonic += f".{inst.dtype.label}"
    # Per-instruction width overrides (rare, but the builder allows them)
    # serialize as a trailing .wN so the round trip is bit-identical;
    # without it the parser would silently widen to the program width.
    if program_width is not None and inst.width != program_width:
        mnemonic += f".w{inst.width}"

    operands: List[str] = []
    if op is Opcode.CMP:
        operands.append(f"f{inst.flag_dst.index}")
    if inst.dst is not None and op.writes_dst:
        operands.append(f"r{inst.dst.reg}")
    for src in inst.sources:
        operands.append(_operand_to_text(src, inst.dtype))
    if op in (Opcode.LOAD, Opcode.STORE):
        operands.append(f"@surf{inst.surface}")
    if op in (Opcode.IF, Opcode.WHILE, Opcode.BREAK):
        pred = inst.pred
        operands.append(f"{'~' if pred.negate else ''}f{pred.index}")

    text = mnemonic
    if operands:
        text += " " + ", ".join(operands)
    # SEL's selector and ordinary predication share the prefix syntax.
    if inst.pred is not None and op not in (Opcode.IF, Opcode.WHILE,
                                            Opcode.BREAK):
        text = f"({'~' if inst.pred.negate else ''}f{inst.pred.index}) " + text
    return text


def program_to_text(program: Program) -> str:
    """Serialize a finalized program to the assembly format."""
    if not program.finalized:
        raise ValueError("serialize finalized programs only")
    lines = [f"kernel {program.name} simd{program.simd_width} "
             f"slm={program.slm_bytes}"]
    if program.gid_reg is not None:
        lines.append(f"gid @r{program.gid_reg}")
    if program.lid_reg is not None:
        lines.append(f"lid @r{program.lid_reg}")
    for param in program.params:
        if param.kind is ParamKind.SURFACE:
            lines.append(f"param {param.name}: surface")
        else:
            lines.append(f"param {param.name}: {param.kind.value} @r{param.reg}")
    lines.append("")
    for inst in program.instructions:
        lines.append("    " + _instruction_to_text(inst, program.simd_width))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse_operand(token: str, lineno: int):
    match = _REG_RE.match(token)
    if match:
        return ("reg", int(match.group(1)))
    match = _FLAG_RE.match(token)
    if match:
        return ("flag", FlagRef(int(match.group(2)), negate=bool(match.group(1))))
    match = _IMM_RE.match(token)
    if match:
        literal, dtype_label = match.groups()
        if dtype_label not in _DTYPES:
            raise AsmError(lineno, f"unknown immediate type {dtype_label!r}")
        dtype = _DTYPES[dtype_label]
        value = (int(literal, 0) if not dtype.is_float
                 else float(literal))
        return ("imm", Imm(value, dtype))
    match = _SURF_RE.match(token)
    if match:
        return ("surface", int(match.group(1)))
    raise AsmError(lineno, f"cannot parse operand {token!r}")


_WIDTH_SUFFIX_RE = re.compile(r"^w(\d+)$")


def _parse_mnemonic(word: str, lineno: int) -> Tuple[Opcode, Optional[CmpOp],
                                                     DType, Optional[DType],
                                                     Optional[int]]:
    parts = word.split(".")
    inst_width: Optional[int] = None
    if len(parts) > 1:
        match = _WIDTH_SUFFIX_RE.match(parts[-1])
        if match:
            inst_width = int(match.group(1))
            parts = parts[:-1]
    name = parts[0]
    if name not in _OPCODES:
        raise AsmError(lineno, f"unknown opcode {name!r}")
    opcode = _OPCODES[name]
    cmp_op: Optional[CmpOp] = None
    dtype = DType.F32
    src_dtype: Optional[DType] = None
    if opcode is Opcode.CMP:
        if len(parts) != 3 or parts[1] not in _CMPS or parts[2] not in _DTYPES:
            raise AsmError(lineno, "cmp needs the form cmp.<cond>.<dtype>")
        cmp_op = _CMPS[parts[1]]
        dtype = _DTYPES[parts[2]]
    elif opcode is Opcode.CVT:
        if len(parts) != 3 or parts[1] not in _DTYPES or parts[2] not in _DTYPES:
            raise AsmError(lineno, "cvt needs the form cvt.<dst>.<src>")
        dtype = _DTYPES[parts[1]]
        src_dtype = _DTYPES[parts[2]]
    elif len(parts) == 2:
        if parts[1] not in _DTYPES:
            raise AsmError(lineno, f"unknown dtype suffix {parts[1]!r}")
        dtype = _DTYPES[parts[1]]
    elif len(parts) > 2:
        raise AsmError(lineno, f"malformed mnemonic {word!r}")
    return opcode, cmp_op, dtype, src_dtype, inst_width


def _parse_instruction(line: str, width: int, lineno: int) -> Instruction:
    pred: Optional[FlagRef] = None
    match = re.match(r"^\((~?f[01])\)\s+(.*)$", line)
    if match:
        kind, flag = _parse_operand(match.group(1), lineno)
        pred = flag
        line = match.group(2)

    pieces = line.split(None, 1)
    opcode, cmp_op, dtype, src_dtype, inst_width = _parse_mnemonic(pieces[0],
                                                                   lineno)
    if inst_width is not None:
        width = inst_width
    tokens = ([t.strip() for t in pieces[1].split(",")] if len(pieces) > 1
              else [])

    dst: Optional[RegRef] = None
    flag_dst: Optional[FlagRef] = None
    sources: List = []
    surface: Optional[int] = None
    for token in tokens:
        kind, value = _parse_operand(token, lineno)
        if kind == "surface":
            surface = value
        elif kind == "flag":
            if opcode is Opcode.CMP and flag_dst is None:
                if value.negate:
                    raise AsmError(lineno, "cmp cannot write a negated flag")
                flag_dst = value
            else:
                pred = value  # IF/WHILE/BREAK condition
        elif kind == "reg":
            ref = RegRef(value, src_dtype if (opcode is Opcode.CVT and
                                              dst is not None) else dtype)
            if opcode.writes_dst and dst is None:
                dst = RegRef(value, dtype)
            else:
                sources.append(ref)
        else:  # immediate
            sources.append(value)

    # Memory address/data operands keep I32 addressing dtype on source 0.
    if opcode.is_memory and sources:
        addr = sources[0]
        if isinstance(addr, RegRef):
            sources[0] = RegRef(addr.reg, DType.I32)

    inst = Instruction(
        opcode=opcode,
        width=width,
        dtype=dtype,
        dst=dst,
        sources=tuple(sources),
        pred=pred,
        flag_dst=flag_dst,
        cmp_op=cmp_op,
        surface=surface,
        src_dtype=src_dtype,
    )
    try:
        inst.validate()
    except ValueError as exc:
        raise AsmError(lineno, str(exc)) from exc
    return inst


def assemble(text: str) -> Program:
    """Parse assembly *text* into a finalized Program."""
    name = "kernel"
    width: Optional[int] = None
    slm_bytes = 0
    gid_reg: Optional[int] = None
    lid_reg: Optional[int] = None
    params: List[KernelParam] = []
    instructions: List[Instruction] = []
    surface_index = 0

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("kernel "):
            match = re.match(r"^kernel\s+(\S+)\s+simd(\d+)(?:\s+slm=(\d+))?$",
                             line)
            if not match:
                raise AsmError(lineno, "expected: kernel <name> simd<W> [slm=N]")
            name = match.group(1)
            width = int(match.group(2))
            slm_bytes = int(match.group(3) or 0)
            continue
        if line.startswith("gid ") or line.startswith("lid "):
            match = re.match(r"^(gid|lid)\s+@r(\d+)$", line)
            if not match:
                raise AsmError(lineno, "expected: gid @rN / lid @rN")
            if match.group(1) == "gid":
                gid_reg = int(match.group(2))
            else:
                lid_reg = int(match.group(2))
            continue
        if line.startswith("param "):
            match = re.match(
                r"^param\s+(\w+):\s*(surface|scalar_f32|scalar_i32)"
                r"(?:\s+@r(\d+))?$", line)
            if not match:
                raise AsmError(lineno, "expected: param <name>: <kind> [@rN]")
            pname, kind_text, reg_text = match.groups()
            kind = ParamKind(kind_text)
            if kind is ParamKind.SURFACE:
                params.append(KernelParam(pname, kind,
                                          surface_index=surface_index))
                surface_index += 1
            else:
                if reg_text is None:
                    raise AsmError(lineno, "scalar params need a register (@rN)")
                params.append(KernelParam(pname, kind, reg=int(reg_text)))
            continue
        if width is None:
            raise AsmError(lineno, "instruction before the kernel header")
        instructions.append(_parse_instruction(line, width, lineno))

    if width is None:
        raise AsmError(0, "missing kernel header")
    program = Program(
        name=name,
        simd_width=width,
        instructions=instructions,
        params=params,
        slm_bytes=slm_bytes,
        gid_reg=gid_reg,
        lid_reg=lid_reg,
    )
    return program.finalize()
