"""Instruction representation of the modelled EU ISA.

A single :class:`Instruction` dataclass covers all opcode families; the
optional fields used by each family are documented on the class.  Control
-flow targets (the matching ELSE/ENDIF/WHILE indices) are *resolved*, not
encoded: :meth:`repro.isa.program.Program.finalize` fills them in, which
mirrors how real EU binaries carry jump offsets computed by the
assembler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import Opcode
from .registers import FlagRef, Imm, Operand, RegRef
from .types import CmpOp, DType


@dataclass
class Instruction:
    """One EU instruction.

    Attributes:
        opcode: operation to perform.
        width: SIMD execution width (1, 4, 8, 16, or 32).
        dtype: element type of destination and (by default) sources.
        dst: destination register, for opcodes that produce a result.
        sources: source operands (registers or immediates).
        pred: optional predicate; the instruction's execution mask is
            ANDed with the flag (or its negation).  Also the *condition*
            operand of IF/WHILE/BREAK/SEL.
        flag_dst: flag register written by CMP.
        cmp_op: comparison condition, for CMP.
        surface: surface (buffer) index for global LOAD/STORE; SLM
            accesses ignore it.
        src_dtype: source element type for CVT (conversion) instructions.
        target: resolved control-flow target (instruction index):
            IF -> index of matching ELSE+1 or ENDIF, ELSE -> ENDIF,
            WHILE -> matching DO+1, BREAK/DO -> index after the WHILE.
        comment: free-form annotation carried into disassembly.
    """

    opcode: Opcode
    width: int
    dtype: DType = DType.F32
    dst: Optional[RegRef] = None
    sources: Tuple[Operand, ...] = field(default_factory=tuple)
    pred: Optional[FlagRef] = None
    flag_dst: Optional[FlagRef] = None
    cmp_op: Optional[CmpOp] = None
    surface: Optional[int] = None
    src_dtype: Optional[DType] = None
    target: Optional[int] = None
    comment: str = ""

    def validate(self) -> None:
        """Check structural well-formedness (raises ``ValueError``)."""
        op = self.opcode
        if len(self.sources) != op.num_sources:
            raise ValueError(
                f"{op} expects {op.num_sources} sources, got {len(self.sources)}"
            )
        if op.writes_dst and self.dst is None:
            raise ValueError(f"{op} requires a destination register")
        if not op.writes_dst and self.dst is not None and op is not Opcode.CMP:
            raise ValueError(f"{op} must not have a destination register")
        if op is Opcode.CMP:
            if self.flag_dst is None:
                raise ValueError("CMP must write a flag register")
            if self.cmp_op is None:
                raise ValueError("CMP requires a comparison condition")
            if self.flag_dst.negate:
                raise ValueError("CMP cannot write a negated flag")
        if op in (Opcode.IF, Opcode.WHILE, Opcode.BREAK, Opcode.SEL):
            if self.pred is None:
                raise ValueError(f"{op} requires a predicate flag")
        if op is Opcode.CVT and self.src_dtype is None:
            raise ValueError("CVT requires src_dtype")
        if op in (Opcode.LOAD, Opcode.STORE) and self.surface is None:
            raise ValueError(f"{op} requires a surface index")
        if op.is_memory:
            for src in self.sources:
                if isinstance(src, Imm):
                    raise ValueError(f"{op} operands must be registers, got {src}")

    @property
    def dtype_factor(self) -> int:
        """Execution-cycle multiplier of this instruction's data type."""
        return self.dtype.dtype_factor

    def reads(self, simd_width: Optional[int] = None):
        """GRF register indices read by this instruction.

        Cached for the instruction's own width (instructions are
        immutable after program finalization; the scoreboard calls this
        on every readiness check).
        """
        if simd_width is None or simd_width == self.width:
            cached = self.__dict__.get("_reads_cache")
            if cached is None:
                cached = self._compute_reads(self.width)
                self.__dict__["_reads_cache"] = cached
            return cached
        return self._compute_reads(simd_width)

    def _compute_reads(self, width: int):
        regs = []
        for src in self.sources:
            if isinstance(src, RegRef):
                regs.extend(src.regs(width))
        return regs

    def writes(self, simd_width: Optional[int] = None):
        """GRF register indices written by this instruction (cached)."""
        if simd_width is None or simd_width == self.width:
            cached = self.__dict__.get("_writes_cache")
            if cached is None:
                cached = self._compute_writes(self.width)
                self.__dict__["_writes_cache"] = cached
            return cached
        return self._compute_writes(simd_width)

    def _compute_writes(self, width: int):
        if self.dst is None or not self.opcode.writes_dst:
            return []
        return list(self.dst.regs(width))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.pred is not None:
            parts.append(f"({self.pred})")
        name = self.opcode.name
        if self.cmp_op is not None:
            name += f".{self.cmp_op}"
        parts.append(f"{name}({self.width})")
        ops = []
        if self.flag_dst is not None:
            ops.append(str(self.flag_dst))
        if self.dst is not None:
            ops.append(str(self.dst))
        ops.extend(str(s) for s in self.sources)
        if ops:
            parts.append(" " + ", ".join(ops))
        if self.surface is not None:
            parts.append(f" @surf{self.surface}")
        if self.target is not None:
            parts.append(f" ->{self.target}")
        if self.comment:
            parts.append(f"  // {self.comment}")
        return "".join(parts)
