"""Kernel programs: instruction containers with resolved control flow.

A :class:`Program` is an ordered list of :class:`~repro.isa.instruction.
Instruction` plus the kernel's argument signature.  :meth:`Program.
finalize` performs the assembler's job: it checks that the structured
control flow (IF/ELSE/ENDIF, DO/BREAK/WHILE) nests properly and resolves
every control instruction's jump target to an instruction index.  The EU
front end then only follows pre-computed targets, exactly as hardware
follows encoded jump offsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instruction import Instruction
from .opcodes import Opcode
from .types import DType


class ParamKind(enum.Enum):
    """Kinds of kernel launch parameters."""

    SURFACE = "surface"
    SCALAR_I32 = "scalar_i32"
    SCALAR_F32 = "scalar_f32"


@dataclass(frozen=True)
class KernelParam:
    """One kernel argument: its name, kind, and binding slot.

    For scalars, ``reg`` is the GRF register the dispatcher broadcasts
    the value into; for surfaces, ``surface_index`` is the binding-table
    index memory instructions reference.
    """

    name: str
    kind: ParamKind
    reg: Optional[int] = None
    surface_index: Optional[int] = None


@dataclass
class Program:
    """A finalized, executable kernel program.

    Attributes:
        name: kernel name (used in reports).
        simd_width: dispatch SIMD width (lanes per EU thread).
        instructions: the instruction list, ending in EOT.
        params: launch-argument signature, in binding order.
        slm_bytes: shared-local-memory bytes required per workgroup.
        num_regs: highest GRF register used + 1 (register footprint).
    """

    name: str
    simd_width: int
    instructions: List[Instruction] = field(default_factory=list)
    params: List[KernelParam] = field(default_factory=list)
    slm_bytes: int = 0
    num_regs: int = 0
    gid_reg: Optional[int] = None
    lid_reg: Optional[int] = None
    _finalized: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    @property
    def finalized(self) -> bool:
        return self._finalized

    def surface_params(self) -> List[KernelParam]:
        """The surface (buffer) parameters in binding order."""
        return [p for p in self.params if p.kind is ParamKind.SURFACE]

    def scalar_params(self) -> List[KernelParam]:
        """The scalar parameters in binding order."""
        return [p for p in self.params if p.kind is not ParamKind.SURFACE]

    def finalize(self) -> "Program":
        """Validate structure and resolve control-flow targets.

        Raises ``ValueError`` on malformed programs: mismatched or
        interleaved IF/ELSE/ENDIF and DO/WHILE, BREAK outside a loop,
        a missing trailing EOT, or per-instruction validation failures.
        Returns ``self`` for chaining.
        """
        if not self.instructions or self.instructions[-1].opcode is not Opcode.EOT:
            raise ValueError(f"program {self.name!r} must end with EOT")
        for inst in self.instructions:
            inst.validate()

        if_stack: List[Dict[str, Optional[int]]] = []
        loop_stack: List[Dict[str, object]] = []
        for idx, inst in enumerate(self.instructions):
            op = inst.opcode
            if op is Opcode.IF:
                if_stack.append({"if": idx, "else": None})
            elif op is Opcode.ELSE:
                if not if_stack:
                    raise ValueError(f"ELSE at {idx} without matching IF")
                frame = if_stack[-1]
                if frame["else"] is not None:
                    raise ValueError(f"duplicate ELSE at {idx} for IF at {frame['if']}")
                frame["else"] = idx
            elif op is Opcode.ENDIF:
                if not if_stack:
                    raise ValueError(f"ENDIF at {idx} without matching IF")
                frame = if_stack.pop()
                if_idx = frame["if"]
                else_idx = frame["else"]
                # IF with an empty then-mask jumps past the then block.
                self.instructions[if_idx].target = (
                    else_idx + 1 if else_idx is not None else idx
                )
                if else_idx is not None:
                    self.instructions[else_idx].target = idx
            elif op is Opcode.DO:
                loop_stack.append({"do": idx, "breaks": []})
            elif op is Opcode.BREAK:
                if not loop_stack:
                    raise ValueError(f"BREAK at {idx} outside any loop")
                loop_stack[-1]["breaks"].append(idx)
            elif op is Opcode.WHILE:
                if not loop_stack:
                    raise ValueError(f"WHILE at {idx} without matching DO")
                frame = loop_stack.pop()
                do_idx = frame["do"]
                # WHILE with surviving lanes jumps back to loop body start.
                inst.target = do_idx + 1
                self.instructions[do_idx].target = idx + 1
                for brk in frame["breaks"]:
                    self.instructions[brk].target = idx + 1
        if if_stack:
            raise ValueError(f"unterminated IF at {if_stack[-1]['if']}")
        if loop_stack:
            raise ValueError(f"unterminated DO at {loop_stack[-1]['do']}")

        self.num_regs = self._register_footprint()
        self._finalized = True
        return self

    def _register_footprint(self) -> int:
        """Highest GRF register touched by any instruction, plus one."""
        top = 0
        for inst in self.instructions:
            for reg in list(inst.reads()) + list(inst.writes()):
                top = max(top, reg + 1)
        return top

    def dynamic_opcode_histogram(self) -> Dict[Opcode, int]:
        """Static opcode histogram (dynamic counts come from execution)."""
        hist: Dict[Opcode, int] = {}
        for inst in self.instructions:
            hist[inst.opcode] = hist.get(inst.opcode, 0) + 1
        return hist

    def disassemble(self) -> str:
        """Readable listing with instruction indices."""
        lines = [f"// kernel {self.name} SIMD{self.simd_width}, {self.num_regs} regs"]
        for param in self.params:
            lines.append(f"// param {param.name}: {param.kind.value}")
        for idx, inst in enumerate(self.instructions):
            lines.append(f"{idx:4d}: {inst}")
        return "\n".join(lines)
