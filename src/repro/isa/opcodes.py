"""Opcodes of the modelled EU ISA and their static properties.

Each opcode carries the execution pipe it dispatches to (paper Section
2.2: FPU for common int/float ops, EM for extended math, a separate SEND
pipe for memory/barrier messages, and a control pipe for the structured
branch instructions handled at the front end) and its result latency in
cycles, used by the scoreboard timing model.

Latencies are representative of the studied architecture class, not
calibrated to any specific product: the paper's results depend on issue
bandwidth, execution-cycle counts, and memory behaviour — not on exact
ALU latencies.
"""

from __future__ import annotations

import enum


class Pipe(enum.Enum):
    """Execution pipe an opcode dispatches to."""

    FPU = "fpu"
    EM = "em"
    SEND = "send"
    CTRL = "ctrl"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Opcode(enum.Enum):
    """All instruction opcodes, with (pipe, result latency, #sources)."""

    # -- FPU pipe: common integer and floating-point operations ----------
    MOV = ("mov", Pipe.FPU, 4, 1)
    ADD = ("add", Pipe.FPU, 4, 2)
    SUB = ("sub", Pipe.FPU, 4, 2)
    MUL = ("mul", Pipe.FPU, 5, 2)
    MAD = ("mad", Pipe.FPU, 5, 3)  # dst = src0 * src1 + src2 (FMA)
    MIN = ("min", Pipe.FPU, 4, 2)
    MAX = ("max", Pipe.FPU, 4, 2)
    ABS = ("abs", Pipe.FPU, 4, 1)
    FLOOR = ("floor", Pipe.FPU, 4, 1)
    AND = ("and", Pipe.FPU, 4, 2)
    OR = ("or", Pipe.FPU, 4, 2)
    XOR = ("xor", Pipe.FPU, 4, 2)
    NOT = ("not", Pipe.FPU, 4, 1)
    SHL = ("shl", Pipe.FPU, 4, 2)
    SHR = ("shr", Pipe.FPU, 4, 2)
    CMP = ("cmp", Pipe.FPU, 2, 2)  # writes a flag register
    SEL = ("sel", Pipe.FPU, 4, 2)  # dst = flag ? src0 : src1
    CVT = ("cvt", Pipe.FPU, 4, 1)  # convert between dtypes (src dtype in src_dtype)

    # -- EM pipe: extended math -------------------------------------------
    DIV = ("div", Pipe.EM, 12, 2)
    SQRT = ("sqrt", Pipe.EM, 12, 1)
    RSQRT = ("rsqrt", Pipe.EM, 12, 1)
    SIN = ("sin", Pipe.EM, 14, 1)
    COS = ("cos", Pipe.EM, 14, 1)
    EXP = ("exp", Pipe.EM, 14, 1)
    LOG = ("log", Pipe.EM, 14, 1)
    POW = ("pow", Pipe.EM, 16, 2)

    # -- SEND pipe: memory and synchronization messages -------------------
    LOAD = ("load", Pipe.SEND, 0, 1)  # gather: dst[i] = surface[addr[i]]
    STORE = ("store", Pipe.SEND, 0, 2)  # scatter: surface[addr[i]] = src[i]
    LOAD_SLM = ("load_slm", Pipe.SEND, 0, 1)
    STORE_SLM = ("store_slm", Pipe.SEND, 0, 2)
    BARRIER = ("barrier", Pipe.SEND, 0, 0)

    # -- CTRL: structured control flow and thread termination -------------
    IF = ("if", Pipe.CTRL, 0, 0)
    ELSE = ("else", Pipe.CTRL, 0, 0)
    ENDIF = ("endif", Pipe.CTRL, 0, 0)
    DO = ("do", Pipe.CTRL, 0, 0)
    WHILE = ("while", Pipe.CTRL, 0, 0)
    BREAK = ("break", Pipe.CTRL, 0, 0)
    EOT = ("eot", Pipe.CTRL, 0, 0)  # end of thread

    def __init__(self, mnemonic: str, pipe: Pipe, latency: int, num_sources: int) -> None:
        self.mnemonic = mnemonic
        self.pipe = pipe
        self.latency = latency
        self.num_sources = num_sources

    @property
    def is_memory(self) -> bool:
        """True for load/store message opcodes (not barriers)."""
        return self in (Opcode.LOAD, Opcode.STORE, Opcode.LOAD_SLM, Opcode.STORE_SLM)

    @property
    def is_slm(self) -> bool:
        """True when the access targets shared local memory."""
        return self in (Opcode.LOAD_SLM, Opcode.STORE_SLM)

    @property
    def is_store(self) -> bool:
        return self in (Opcode.STORE, Opcode.STORE_SLM)

    @property
    def is_control(self) -> bool:
        return self.pipe is Pipe.CTRL

    @property
    def writes_dst(self) -> bool:
        """True when the instruction produces a register result."""
        if self.pipe is Pipe.CTRL or self is Opcode.BARRIER or self is Opcode.CMP:
            return False
        return not self.is_store

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: Opcodes that consume ALU execution cycles (and therefore benefit from
#: BCC/SCC cycle compression).
ALU_OPCODES = tuple(op for op in Opcode if op.pipe in (Pipe.FPU, Pipe.EM))
