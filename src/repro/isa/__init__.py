"""The modelled EU SIMD instruction set.

Variable-width SIMD instructions (1/4/8/16/32 lanes) with per-lane
predication, structured control flow, and SEND-style memory messages —
a faithful abstraction of the EU ISA described in paper Section 2.2.
"""

from .asm import AsmError, assemble, program_to_text
from .builder import KernelBuilder
from .instruction import Instruction
from .opcodes import ALU_OPCODES, Opcode, Pipe
from .program import KernelParam, ParamKind, Program
from .registers import NUM_FLAGS, NUM_GRF_REGS, FlagRef, Imm, RegRef, as_operand
from .types import GRF_REG_BYTES, SLOTS_PER_REG, CmpOp, DType

__all__ = [
    "ALU_OPCODES",
    "AsmError",
    "assemble",
    "program_to_text",
    "GRF_REG_BYTES",
    "NUM_FLAGS",
    "NUM_GRF_REGS",
    "SLOTS_PER_REG",
    "CmpOp",
    "DType",
    "FlagRef",
    "Imm",
    "Instruction",
    "KernelBuilder",
    "KernelParam",
    "Opcode",
    "ParamKind",
    "Pipe",
    "Program",
    "RegRef",
    "as_operand",
]
