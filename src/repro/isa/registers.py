"""Register and operand references of the modelled EU ISA.

Each EU thread owns a general register file (GRF) of 128 registers, each
256 bits wide (paper Section 2.2).  An instruction operand names the
first GRF register it occupies; wide-SIMD operands implicitly span
consecutive registers (the paper's ``ADD(16) R12, R8, R10`` example uses
register pairs R12-13, R8-9, R10-11).

Operands are either :class:`RegRef` (register), :class:`Imm` (immediate
broadcast to all lanes), or :class:`FlagRef` (one of the two per-thread
flag registers used for predication and control flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .types import DType

#: Number of GRF registers per EU thread (paper Section 2.2).
NUM_GRF_REGS = 128

#: Number of per-thread flag registers (Intel EUs expose f0/f1).
NUM_FLAGS = 2


@dataclass(frozen=True)
class RegRef:
    """Reference to a GRF operand starting at register *reg*.

    Attributes:
        reg: index of the first 256-bit register (0..127).
        dtype: element data type of the operand.
    """

    reg: int
    dtype: DType = DType.F32

    def __post_init__(self) -> None:
        if not 0 <= self.reg < NUM_GRF_REGS:
            raise ValueError(f"GRF register index out of range: {self.reg}")

    def span(self, simd_width: int) -> int:
        """Number of consecutive registers occupied at *simd_width*."""
        return self.dtype.regs_for_width(simd_width)

    def regs(self, simd_width: int) -> range:
        """Range of register indices occupied at *simd_width*."""
        last = self.reg + self.span(simd_width)
        if last > NUM_GRF_REGS:
            raise ValueError(
                f"operand r{self.reg}:{self.dtype} at SIMD{simd_width} "
                f"overflows the GRF (spans to r{last - 1})"
            )
        return range(self.reg, last)

    def with_dtype(self, dtype: DType) -> "RegRef":
        """Same storage reinterpreted with a different element type."""
        return RegRef(self.reg, dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{self.reg}:{self.dtype}"


@dataclass(frozen=True)
class Imm:
    """Immediate operand, broadcast to every enabled lane."""

    value: Union[int, float]
    dtype: DType = DType.F32

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value}:{self.dtype}"


@dataclass(frozen=True)
class FlagRef:
    """Reference to one of the per-thread flag registers (f0/f1)."""

    index: int
    negate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_FLAGS:
            raise ValueError(f"flag register index out of range: {self.index}")

    def __invert__(self) -> "FlagRef":
        """``~f`` — the same flag with inverted sense (predicate-negate)."""
        return FlagRef(self.index, not self.negate)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{'~' if self.negate else ''}f{self.index}"


#: Anything acceptable as an instruction source operand.
Operand = Union[RegRef, Imm]


def as_operand(value: Union[RegRef, Imm, int, float], dtype: DType) -> Operand:
    """Coerce a Python number to an :class:`Imm` of *dtype*; pass refs through.

    Register references keep their own dtype (the instruction's dtype
    governs interpretation; mixed-dtype sources are legal for CVT).
    """
    if isinstance(value, (RegRef, Imm)):
        return value
    if isinstance(value, bool):
        raise TypeError("bool is not a valid operand; use an integer 0/1")
    if isinstance(value, (int, float)):
        return Imm(value, dtype)
    raise TypeError(f"cannot use {value!r} as an instruction operand")
