"""Data types of the modelled EU ISA.

The EU register file is typeless storage; instructions carry the data
type of their operands.  The type determines (a) the numpy view used by
the functional interpreter, (b) how many 256-bit GRF registers a
SIMD-*W* operand spans, and (c) the execution-cycle multiplier for wide
types (paper Section 4.1: 64-bit operands take twice the quad cycles).
"""

from __future__ import annotations

import enum

import numpy as np

#: Bytes per GRF register (256 bits), paper Section 2.2.
GRF_REG_BYTES = 32

#: 32-bit slots per GRF register.
SLOTS_PER_REG = GRF_REG_BYTES // 4


class DType(enum.Enum):
    """Operand data type, with element size and numpy dtype."""

    F32 = ("f32", 4, np.float32)
    I32 = ("i32", 4, np.int32)
    U32 = ("u32", 4, np.uint32)
    F64 = ("f64", 8, np.float64)
    I64 = ("i64", 8, np.int64)

    def __init__(self, label: str, size: int, np_dtype) -> None:
        self.label = label
        self.size = size
        self.np_dtype = np.dtype(np_dtype)

    @property
    def dtype_factor(self) -> int:
        """Execution-cycle multiplier: 2 for 64-bit types, else 1."""
        return 2 if self.size == 8 else 1

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_signed(self) -> bool:
        return self in (DType.F32, DType.F64, DType.I32, DType.I64)

    def regs_for_width(self, simd_width: int) -> int:
        """GRF registers a SIMD-*simd_width* operand of this type spans.

        A SIMD16 F32 operand spans two registers (R12-R13 in the paper's
        Section 4.1 example); sub-register operands still reserve one.
        """
        if simd_width < 1:
            raise ValueError(f"simd_width must be positive, got {simd_width}")
        return max(1, (simd_width * self.size) // GRF_REG_BYTES)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


class CmpOp(enum.Enum):
    """Comparison condition for CMP instructions (writes a flag register)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def apply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Evaluate the comparison elementwise, returning a bool array."""
        if self is CmpOp.EQ:
            return a == b
        if self is CmpOp.NE:
            return a != b
        if self is CmpOp.LT:
            return a < b
        if self is CmpOp.LE:
            return a <= b
        if self is CmpOp.GT:
            return a > b
        return a >= b

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
