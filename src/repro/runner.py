"""Shared execution engine for every experiment and benchmark.

All of the paper's evaluation artifacts reduce to the same primitive:
simulate a ``(workload, GpuConfig)`` pair and keep the
:class:`~repro.gpu.results.KernelRunResult`.  The figure/table modules
used to do that serially and independently, re-simulating identical
pairs many times per regeneration.  This module centralizes the
primitive:

* :class:`Job` names one simulation request.  Jobs are keyed by the
  workload's registry name, its factory keyword arguments, and a stable
  digest of the :class:`~repro.gpu.config.GpuConfig` dataclass, so two
  experiments asking for the same simulation share one execution.
* :class:`Runner` deduplicates a batch of jobs, consults an on-disk
  :class:`ResultCache`, and fans cache misses out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Workloads are rebuilt
  from :data:`~repro.kernels.WORKLOAD_REGISTRY` by name inside each
  worker, so nothing unpicklable ever crosses the process boundary.
* :class:`ResultCache` stores pickled results keyed by job identity plus
  a *code salt* — a digest of the simulator's own source — so editing
  the timing model invalidates everything while an unrelated edit (an
  experiment harness, the CLI, docs) keeps the cache warm.

Every simulation is deterministic (workload factories seed their RNGs),
so parallel and cached runs are bit-identical to serial cold runs.

The engine is also *fault-tolerant* (a multi-hour regeneration pass must
survive a single bad job): per-job wall-clock timeouts backed by the
simulator's own watchdog, bounded retry with exponential backoff for
transient worker failures, graceful degradation from the process pool to
in-process serial execution when the pool breaks, crash-safe cache
writes with quarantine of corrupted entries, and a
:class:`CheckpointJournal` that lets ``repro sweep --resume`` skip
already-completed jobs after a crash or Ctrl-C.  Failures are typed
(:mod:`repro.errors`) and surface per-job in :class:`RunStats`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
import pickle
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .errors import (
    CacheCorruptionError,
    CodeSaltMismatchError,
    JobTimeoutError,
    SimulationError,
    WorkerCrashError,
    describe,
)
from .gpu.config import GpuConfig
from .gpu.results import KernelRunResult

#: Bump when the cached payload layout changes incompatibly.
CACHE_SCHEMA = 1

#: Subpackages whose source participates in the cache code salt: exactly
#: the ones that can change what a simulation measures.
_SIM_PACKAGES = ("core", "dsl", "eu", "gpu", "isa", "kernels", "memory",
                 "trace")

_inline_ids = itertools.count()
_tmp_ids = itertools.count()


# ---------------------------------------------------------------------------
# Stable keying


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to JSON-serializable data with a stable ordering."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, Mapping):
        return {str(key): _canonical(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!r} values"
    )


def stable_digest(obj: Any) -> str:
    """Hex digest of *obj*'s canonical JSON form (config/params keying)."""
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def config_digest(config: GpuConfig) -> str:
    """Stable short digest of a :class:`GpuConfig` (nested dataclasses included)."""
    return stable_digest(config)


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of the simulator's own source files.

    Any edit to the packages that define what a simulation *measures*
    (cycle model, EU, memory hierarchy, ISA, kernels) changes the salt
    and therefore invalidates every cache entry; edits elsewhere
    (experiments, analysis, CLI, this module's orchestration) do not.
    """
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parent
    for package in _SIM_PACKAGES:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    digest.update(f"schema={CACHE_SCHEMA}".encode("utf-8"))
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Jobs


class Job:
    """One simulation request: a workload plus the config to run it under.

    Args:
        workload: registry name (see :data:`repro.kernels.WORKLOAD_REGISTRY`)
            or, for inline-factory jobs, a display label.
        config: machine parameters for the run (default :class:`GpuConfig`).
        params: keyword arguments for the workload factory (problem
            sizes, SIMD width, ...).  Part of the job's identity.
        factory: optional zero/keyword-arg callable returning a fresh
            :class:`~repro.kernels.workload.Workload`.  Inline-factory
            jobs run in the parent process and are never cached (the
            callable has no stable identity); prefer registry names.
        verify: run the workload's host reference check after simulating.
    """

    __slots__ = ("workload", "config", "params", "factory", "verify",
                 "_inline_id", "_key")

    def __init__(
        self,
        workload: str,
        config: Optional[GpuConfig] = None,
        params: Optional[Mapping[str, Any]] = None,
        factory: Optional[Callable[..., Any]] = None,
        verify: bool = True,
    ) -> None:
        self.workload = workload
        self.config = config if config is not None else GpuConfig()
        self.params: Tuple[Tuple[str, Any], ...] = tuple(
            sorted((params or {}).items())
        )
        self.factory = factory
        self.verify = verify
        self._inline_id = None if factory is not None else -1
        if factory is None:
            from .kernels import WORKLOAD_REGISTRY

            if workload not in WORKLOAD_REGISTRY:
                raise KeyError(
                    f"unknown workload {workload!r}; pass factory= for "
                    f"out-of-registry workloads"
                )
        else:
            self._inline_id = next(_inline_ids)
        self._key = self._compute_key()

    def _compute_key(self) -> str:
        parts = [
            self.workload,
            stable_digest(dict(self.params)),
            config_digest(self.config),
        ]
        if self.factory is not None:
            # Inline factories have no stable identity: make the key
            # unique so two different callables never alias.
            parts.append(f"inline{self._inline_id}")
        return "|".join(parts)

    @property
    def key(self) -> str:
        """Identity of this job within a batch (and, if cacheable, on disk)."""
        return self._key

    @property
    def cacheable(self) -> bool:
        # Fault-injection workloads (repro.kernels.faults) are registry
        # entries, so workers can rebuild them by name, but their whole
        # point is to misbehave — never let them poison the cache.
        from .kernels import FAULT_PREFIX

        return (self.factory is None
                and not self.workload.startswith(FAULT_PREFIX))

    def build(self):
        """Instantiate a fresh workload for this job."""
        if self.factory is not None:
            return self.factory(**dict(self.params))
        from .kernels import WORKLOAD_REGISTRY

        return WORKLOAD_REGISTRY[self.workload](**dict(self.params))

    def execute(self) -> KernelRunResult:
        """Simulate this job in the current process."""
        from .kernels.workload import run_workload

        return run_workload(self.build(), self.config, verify=self.verify)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and self._key == other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.workload!r}, params={dict(self.params)!r})"


def _execute_named(workload: str, params: Tuple[Tuple[str, Any], ...],
                   config: GpuConfig, verify: bool,
                   timeout: Optional[float] = None) -> KernelRunResult:
    """Process-pool entry point: rebuild the workload by name and run it.

    *timeout* arms the simulator's in-worker wall-clock watchdog, so a
    hung kernel kills itself with a typed error instead of relying on
    the parent to notice and terminate the whole pool.
    """
    from .kernels import WORKLOAD_REGISTRY
    from .kernels.workload import run_workload

    instance = WORKLOAD_REGISTRY[workload](**dict(params))
    return run_workload(instance, config, verify=verify, host_seconds=timeout)


# ---------------------------------------------------------------------------
# On-disk result cache


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-sim"


class ResultCache:
    """Content-keyed pickle store of :class:`KernelRunResult`.

    Entry names combine the (sanitized) workload name, the job key, and
    the code salt.  Entries are *sharded* two directory levels deep by
    digest prefix (``<root>/ab/cd/<name>-abcd....pkl``) so a
    service-scale cache of hundreds of thousands of results never
    degrades into one giant flat directory; flat entries written by
    older versions are still found and transparently migrated into
    their shard on first read.  Writes are crash-safe: the payload goes
    to a uniquely-named temp file in the same directory, is fsynced, and
    is ``os.replace``-d into place, so a killed process can never leave
    a truncated entry behind (at worst an orphaned ``.*.tmp`` file,
    swept by :meth:`clear`).  A corrupted or unreadable entry is
    *quarantined* — moved into ``<root>/quarantine/`` for post-mortem
    inspection — and treated as a miss so the job falls back to
    re-simulation; with ``strict=True`` (or ``$REPRO_STRICT_CACHE``) it
    raises :class:`~repro.errors.CacheCorruptionError` instead.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None,
                 strict: Optional[bool] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else code_salt()
        if strict is None:
            strict = bool(os.environ.get("REPRO_STRICT_CACHE"))
        self.strict = strict
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Flat (pre-sharding) entries migrated into their shard this
        #: session.
        self.migrated = 0
        #: Quarantine destinations of entries condemned this session.
        self.quarantined: List[Path] = []

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _entry_name(self, job: Job) -> str:
        return self._entry_name_for_key(job.key)

    def _entry_name_for_key(self, key: str) -> str:
        # A content key's first |-separated part is the workload name
        # (see Job._compute_key), kept in the entry name for humans.
        workload = key.split("|", 1)[0]
        name = re.sub(r"[^A-Za-z0-9_.-]", "_", workload)
        digest = hashlib.sha256(
            f"{key}|{self.salt}".encode("utf-8")
        ).hexdigest()[:32]
        return f"{name}-{digest}.pkl"

    def path_for(self, job: Job) -> Path:
        """Sharded location of *job*'s entry: ``<root>/ab/cd/<entry>``."""
        return self.path_for_key(job.key)

    def path_for_key(self, key: str) -> Path:
        """Sharded location of the entry for a raw content *key*.

        The shard is the first four hex digits of the entry digest (the
        trailing part of the file name), giving a 256x256 fanout.  This
        is the fleet-facing address: the serve daemon's cache endpoints
        resolve ``GET/POST /cache/{key}`` through it without needing to
        rebuild a :class:`Job` (whose constructor validates the workload
        registry — irrelevant for a pure byte fetch).
        """
        entry = self._entry_name_for_key(key)
        digest = entry.rsplit("-", 1)[1]
        return self.root / digest[:2] / digest[2:4] / entry

    def legacy_path_for(self, job: Job) -> Path:
        """Pre-sharding flat location (read-through migration source)."""
        return self.root / self._entry_name(job)

    # -- bytes-level fleet surface -----------------------------------------

    @staticmethod
    def serialize(result: KernelRunResult) -> bytes:
        """The exact bytes :meth:`store` writes for *result*."""
        return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def deserialize(data: bytes) -> KernelRunResult:
        """Decode :meth:`serialize` output; typed error on garbage."""
        try:
            result = pickle.loads(data)
            if not isinstance(result, KernelRunResult):
                raise TypeError(
                    f"cache payload holds {type(result).__name__}")
        except CacheCorruptionError:
            raise
        except Exception as exc:
            raise CacheCorruptionError(
                f"cache payload is unreadable "
                f"({type(exc).__name__}: {exc})") from exc
        return result

    def fetch(self, key: str) -> Optional[Tuple[bytes, KernelRunResult]]:
        """Raw entry bytes (plus the decoded result) for *key*, or None.

        The fleet fetch path: the bytes are what ``GET /cache/{key}``
        ships to workers, and the decoded result proves they are
        servable before they leave the daemon.  A corrupt entry is
        quarantined and reported as a miss (strict mode raises), same
        contract as :meth:`load`.
        """
        path = self.path_for_key(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            result = self.deserialize(data)
        except CacheCorruptionError:
            self.corrupt += 1
            moved = self._quarantine(path)
            if self.strict:
                where = f"; quarantined to {moved}" if moved else ""
                raise CacheCorruptionError(
                    f"cache entry {path.name} is unreadable{where}")
            return None
        return data, result

    def store_payload(self, key: str, data: bytes,
                      salt: Optional[str] = None,
                      expect_digest: Optional[str] = None
                      ) -> KernelRunResult:
        """Ingest serialized result bytes published by a fleet peer.

        Salt-gated and digest-verified: *salt* (when given) must match
        this cache's code salt — a publish from a worker running
        different simulator source raises
        :class:`~repro.errors.CodeSaltMismatchError` rather than
        poisoning the store — and the decoded result's buffer digest
        must match *expect_digest* (when given) or the payload is
        rejected as corrupt.  Returns the verified, reconstructed
        :class:`KernelRunResult`; the original bytes are written
        atomically (same crash-safety as :meth:`store`).
        """
        if salt is not None and salt != self.salt:
            raise CodeSaltMismatchError(
                f"cache publish for key {key!r} carries code salt "
                f"{salt!r} but this store is salted {self.salt!r} "
                f"(mixed simulator versions in the fleet)")
        result = self.deserialize(data)
        if expect_digest is not None and result.buffers_digest != expect_digest:
            raise CacheCorruptionError(
                f"cache publish for key {key!r} decodes to buffer digest "
                f"{result.buffers_digest[:16]}... but claimed "
                f"{str(expect_digest)[:16]}...")
        self._write(self.path_for_key(key), data)
        return result

    def load(self, job: Job) -> Optional[KernelRunResult]:
        path = self.path_for(job)
        migrate_from: Optional[Path] = None
        try:
            data = path.read_bytes()
        except OSError:
            # Fall back to the flat pre-sharding layout; a hit there is
            # migrated into its shard below so the flat directory drains
            # as it is read.
            legacy = self.legacy_path_for(job)
            try:
                data = legacy.read_bytes()
            except OSError:
                self.misses += 1
                return None
            migrate_from = legacy
            path = legacy
        try:
            result = pickle.loads(data)
            if not isinstance(result, KernelRunResult):
                raise TypeError(f"cache entry holds {type(result).__name__}")
        except Exception as exc:
            self.corrupt += 1
            self.misses += 1
            moved = self._quarantine(path)
            if self.strict:
                where = f"; quarantined to {moved}" if moved else ""
                raise CacheCorruptionError(
                    f"cache entry {path.name} is unreadable "
                    f"({type(exc).__name__}: {exc}){where}"
                ) from exc
            return None
        if migrate_from is not None:
            self._migrate(job, migrate_from)
        self.hits += 1
        return result

    def _migrate(self, job: Job, legacy: Path) -> None:
        """Move a readable flat entry into its shard (best effort)."""
        target = self.path_for(job)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
        except OSError:  # pragma: no cover - racing writer/reader
            return
        self.migrated += 1

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a condemned entry aside; fall back to deleting it."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.quarantined.append(target)
        return target

    def store(self, job: Job, result: KernelRunResult) -> None:
        self._write(self.path_for(job), self.serialize(result))

    def _write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique per (process, sequence number): concurrent writers of
        # the same entry never collide, and a crash mid-write leaves only
        # this temp file — the published entry is always complete.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{next(_tmp_ids)}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cache entry (and stale temp files); returns the
        number of entries removed.  Covers both the sharded layout and
        any flat pre-sharding leftovers."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.pkl", "*/*/*.pkl"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            for pattern in (".*.tmp", "*/*/.*.tmp"):
                for stale in self.root.glob(pattern):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
        return removed


# ---------------------------------------------------------------------------
# Runner


@dataclass
class JobEvent:
    """Progress callback payload: one job was resolved.

    ``result`` is set for "cached"/"executed" events and ``error`` for
    "failed" ones, so a progress hook can double as a checkpoint writer
    (this is how ``repro sweep`` journals completed jobs incrementally).
    """

    job: Job
    status: str  # "cached" | "executed" | "failed"
    elapsed: float  # seconds spent *executing* this job (0 for cached)
    index: int  # 1-based position among the batch's unique jobs
    total: int  # number of unique jobs in the batch
    result: Optional[KernelRunResult] = None
    error: Optional[BaseException] = None
    #: Seconds this job spent waiting to start (behind earlier jobs in
    #: the serial path, or queued behind busy pool workers) before its
    #: execution clock began.  Kept separate from ``elapsed`` so wait
    #: and execution are never conflated (the PR-3 deadline bug).
    queue_wait: float = 0.0


@dataclass
class RunStats:
    """Accounting for one :meth:`Runner.run` batch."""

    requested: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0
    #: Host seconds spent actually simulating (sum of per-job elapsed
    #: time over executed jobs; cache hits cost ~0 and are excluded).
    host_seconds: float = 0.0
    #: Host seconds jobs spent *queued* before execution began (sum of
    #: per-job waits over executed and failed jobs).  Disjoint from
    #: ``host_seconds``: wait and execution are first-class, separate
    #: quantities.
    queue_seconds: float = 0.0
    #: Simulated GPU cycles produced by the executed jobs.
    total_cycles: int = 0
    #: Jobs that ultimately failed (after retries), keyed by job key.
    failures: Dict[str, BaseException] = field(default_factory=dict)
    failed: int = 0
    #: Individual retry attempts made for transient failures.
    retried: int = 0
    #: Failures that were wall-clock timeouts.
    timeouts: int = 0
    #: Times the process pool broke and execution fell back to serial.
    degraded: int = 0

    @property
    def cycles_per_second(self) -> float:
        """Simulator throughput: simulated cycles per host second of
        execution (0.0 when nothing was executed this batch)."""
        if self.host_seconds <= 0:
            return 0.0
        return self.total_cycles / self.host_seconds


class Runner:
    """Deduplicating, caching, parallel, fault-tolerant executor of
    simulation jobs.

    Args:
        workers: process count for cache misses.  1 (default) runs
            serially in-process; ``None`` reads ``$REPRO_JOBS``.
        cache: a :class:`ResultCache`, a path for one, ``None``/"default"
            for the default location, or ``False`` to disable caching.
        verify: master switch for host reference checks (AND-ed with each
            job's own flag).
        progress: optional callable receiving a :class:`JobEvent` as each
            unique job resolves.
        timeout: per-job wall-clock budget in seconds (``None`` = no
            limit).  Enforced inside each job by the simulator's
            watchdog; pool workers that still overrun (hung host code)
            are killed from the parent after an additional grace period.
        retries: bounded retry count for *transient* failures (worker
            crashes, unclassified worker exceptions).  Typed
            deterministic failures — deadlock, verification, timeout —
            are never retried.
        retry_backoff: base of the exponential backoff between retry
            attempts (``retry_backoff * 2**(attempt-1)`` seconds; 0
            disables sleeping, which tests use).
        strict: when True (default), :meth:`run` re-raises the first
            job failure after the batch drains; when False it returns
            the successful results and leaves failures in
            ``last_stats.failures`` for the caller to salvage.
        timeout_grace: extra seconds the parent grants a pool worker
            beyond ``timeout`` before killing the pool (default
            ``max(2, timeout)``).
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Any = "default",
        verify: bool = True,
        progress: Optional[Callable[[JobEvent], None]] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.5,
        strict: bool = True,
        timeout_grace: Optional[float] = None,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_JOBS", "1") or "1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if cache is False or cache is None:
            self.cache: Optional[ResultCache] = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        elif cache == "default":
            self.cache = (None if os.environ.get("REPRO_NO_CACHE")
                          else ResultCache())
        else:
            self.cache = ResultCache(cache)
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.verify = verify
        self.progress = progress
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.strict = strict
        self.timeout_grace = timeout_grace
        self.last_stats = RunStats()
        # Cumulative counters across the runner's lifetime (test hooks).
        self.total_executed = 0
        self.total_cache_hits = 0

    # -- public API --------------------------------------------------------

    def run_one(self, workload: str, config: Optional[GpuConfig] = None,
                **params: Any) -> KernelRunResult:
        """Run a single registry workload through the engine."""
        job = Job(workload, config, params=params)
        return self.run([job])[job]

    def run(self, jobs: Iterable[Job],
            strict: Optional[bool] = None) -> Dict[Job, KernelRunResult]:
        """Resolve a batch of jobs; returns ``{job: result}``.

        Duplicate jobs (same workload, params, and config) are simulated
        once; every requested job still appears as a key in the returned
        mapping, so callers can look results up with their own objects.

        Failure policy: a job whose execution fails permanently (after
        retries and pool degradation) lands in ``last_stats.failures``.
        Under strict mode (the runner's default, overridable per call)
        the first such failure is re-raised once the rest of the batch
        has drained; otherwise the failed jobs are simply absent from
        the returned mapping.  ``KeyboardInterrupt`` cancels pending
        work, preserves everything already cached, and propagates.
        """
        start = time.perf_counter()
        requested = list(jobs)
        unique: Dict[str, Job] = {}
        for job in requested:
            unique.setdefault(job.key, job)

        stats = RunStats(requested=len(requested), unique=len(unique))
        results: Dict[str, KernelRunResult] = {}
        pending: List[Job] = []
        progress_index = 0

        def emit(job: Job, status: str, elapsed: float,
                 result: Optional[KernelRunResult] = None,
                 error: Optional[BaseException] = None,
                 queue_wait: float = 0.0) -> None:
            nonlocal progress_index
            progress_index += 1
            if self.progress is not None:
                self.progress(JobEvent(job, status, elapsed,
                                       progress_index, len(unique),
                                       result, error, queue_wait))

        try:
            for key, job in unique.items():
                cached = (self.cache.load(job)
                          if self.cache is not None and job.cacheable
                          else None)
                if cached is not None:
                    results[key] = cached
                    stats.cache_hits += 1
                    emit(job, "cached", 0.0, result=cached)
                else:
                    pending.append(job)

            named = [job for job in pending if job.factory is None]
            inline = [job for job in pending if job.factory is not None]

            queued_since = time.monotonic()
            if len(named) > 1 and self.workers > 1:
                self._run_pool(named, results, stats, emit, queued_since)
            else:
                for job in named:
                    self._run_local(job, results, stats, emit, queued_since)
            for job in inline:
                self._run_local(job, results, stats, emit, queued_since)
        finally:
            stats.wall_seconds = time.perf_counter() - start
            self.last_stats = stats
            self.total_executed += stats.executed
            self.total_cache_hits += stats.cache_hits

        if (self.strict if strict is None else strict) and stats.failures:
            raise next(iter(stats.failures.values()))
        return {job: results[job.key]
                for job in requested if job.key in results}

    # -- execution paths ---------------------------------------------------

    def _finish(self, job: Job, result: KernelRunResult,
                results: Dict[str, KernelRunResult], stats: RunStats,
                emit, elapsed: float, queue_wait: float = 0.0) -> None:
        results[job.key] = result
        stats.executed += 1
        stats.host_seconds += elapsed
        stats.queue_seconds += queue_wait
        stats.total_cycles += result.total_cycles
        if self.cache is not None and job.cacheable:
            self.cache.store(job, result)
        emit(job, "executed", elapsed, result=result, queue_wait=queue_wait)

    def _fail(self, job: Job, error: BaseException, stats: RunStats,
              emit, elapsed: float, queue_wait: float = 0.0) -> None:
        stats.failed += 1
        if isinstance(error, JobTimeoutError):
            stats.timeouts += 1
        stats.queue_seconds += queue_wait
        stats.failures[job.key] = error
        emit(job, "failed", elapsed, error=error, queue_wait=queue_wait)

    def _backoff(self, attempt: int) -> None:
        delay = self.retry_backoff * (2 ** (attempt - 1))
        if delay > 0:
            time.sleep(delay)

    def _grace_seconds(self) -> float:
        if self.timeout_grace is not None:
            return self.timeout_grace
        return max(2.0, self.timeout or 0.0)

    def _run_local(self, job: Job, results, stats, emit,
                   queued_since: Optional[float] = None) -> None:
        from .kernels.workload import run_workload

        # Time spent behind earlier jobs of this batch, measured up to
        # the moment execution (first attempt) begins.
        queue_wait = (max(0.0, time.monotonic() - queued_since)
                      if queued_since is not None else 0.0)
        attempt = 0
        while True:
            tick = time.perf_counter()
            try:
                result = run_workload(job.build(), job.config,
                                      verify=job.verify and self.verify,
                                      host_seconds=self.timeout)
            except SimulationError as exc:
                # Typed failures are deterministic: retrying a deadlock
                # or a verification mismatch would reproduce it.
                self._fail(job, exc, stats, emit,
                           time.perf_counter() - tick, queue_wait)
                return
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if attempt < self.retries:
                    attempt += 1
                    stats.retried += 1
                    self._backoff(attempt)
                    continue
                crash = WorkerCrashError(
                    f"job {job.workload!r} failed after {attempt + 1} "
                    f"attempt(s): {describe(exc)}")
                crash.__cause__ = exc
                self._fail(job, crash, stats, emit,
                           time.perf_counter() - tick, queue_wait)
                return
            else:
                self._finish(job, result, results, stats, emit,
                             time.perf_counter() - tick, queue_wait)
                return

    def _run_pool(self, named: List[Job], results, stats, emit,
                  queued_since: Optional[float] = None) -> None:
        """Fan *named* jobs across worker processes, surviving faults.

        Each round submits the outstanding jobs to a fresh
        ``ProcessPoolExecutor``; jobs whose failure is transient come
        back for the next round (bounded by ``retries``).  If a round's
        pool breaks — a worker was OOM-killed, segfaulted, or had to be
        terminated for overrunning its deadline — execution degrades to
        in-process serial for whatever is left.
        """
        remaining = list(named)
        attempt = {job.key: 0 for job in named}
        queued_at = (queued_since if queued_since is not None
                     else time.monotonic())
        while remaining:
            remaining, pool_died = self._pool_round(remaining, attempt,
                                                    results, stats, emit,
                                                    queued_at)
            if pool_died and remaining:
                stats.degraded += 1
                for job in remaining:
                    self._run_local(job, results, stats, emit, queued_at)
                return
            # Retry rounds measure waiting from the moment the jobs
            # became runnable again, not from the original batch start.
            queued_at = time.monotonic()

    def _pool_round(self, jobs: List[Job], attempt: Dict[str, int],
                    results, stats, emit,
                    queued_at: float) -> Tuple[List[Job], bool]:
        """One process-pool pass; returns (jobs to rerun, pool died?)."""
        retry: List[Job] = []
        broken = False
        workers = min(self.workers, len(jobs))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[Any, Job] = {}
        started: Dict[Any, float] = {}
        waited: Dict[Any, float] = {}
        queue = list(jobs)

        def submit_next() -> Any:
            # Submission is throttled to the worker count so a submitted
            # future is handed to a free worker at once, making its
            # submit timestamp its running-start timestamp.  (Submitting
            # everything up front would start the timeout clock on jobs
            # still queued behind busy workers, spuriously condemning
            # any job that waits longer than timeout+grace.)
            job = queue.pop(0)
            future = pool.submit(
                _execute_named, job.workload, job.params, job.config,
                job.verify and self.verify, self.timeout)
            futures[future] = job
            started[future] = time.monotonic()
            waited[future] = max(0.0, started[future] - queued_at)
            return future

        try:
            outstanding = {submit_next() for _ in range(workers)}
            deadline = (None if self.timeout is None
                        else self.timeout + self._grace_seconds())
            while outstanding:
                done, outstanding = wait(
                    outstanding, timeout=None if deadline is None else 0.05,
                    return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures[future]
                    elapsed = time.monotonic() - started[future]
                    queue_wait = waited[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        retry.append(job)
                    except SimulationError as exc:
                        self._fail(job, exc, stats, emit, elapsed,
                                   queue_wait)
                    except Exception as exc:
                        if attempt[job.key] < self.retries:
                            attempt[job.key] += 1
                            stats.retried += 1
                            self._backoff(attempt[job.key])
                            retry.append(job)
                        else:
                            crash = WorkerCrashError(
                                f"job {job.workload!r} failed after "
                                f"{attempt[job.key] + 1} attempt(s): "
                                f"{describe(exc)}")
                            crash.__cause__ = exc
                            self._fail(job, crash, stats, emit, elapsed,
                                       queue_wait)
                    else:
                        self._finish(job, result, results, stats, emit,
                                     elapsed, queue_wait)
                    if queue and not broken:
                        outstanding.add(submit_next())
                if broken:
                    # The pool manager saw a worker die: every future
                    # still outstanding is lost with it, as is anything
                    # not yet submitted.
                    retry.extend(futures[f] for f in outstanding)
                    retry.extend(queue)
                    return retry, True
                if deadline is not None and outstanding:
                    # Every outstanding future holds a worker (throttled
                    # submission), so its clock measures execution, not
                    # queueing.
                    now = time.monotonic()
                    overdue = [f for f in outstanding
                               if now - started[f] > deadline]
                    if overdue:
                        # The in-worker watchdog should have fired long
                        # ago: the worker is hung outside the simulator
                        # loop.  Kill the pool; surviving jobs rerun.
                        for future in overdue:
                            job = futures[future]
                            self._fail(job, JobTimeoutError(
                                f"job {job.workload!r} exceeded its "
                                f"{self.timeout:g}s budget (+"
                                f"{self._grace_seconds():g}s grace) and "
                                f"did not self-terminate; worker killed"),
                                stats, emit, now - started[future],
                                waited[future])
                        overdue_set = set(overdue)
                        retry.extend(futures[f] for f in outstanding
                                     if f not in overdue_set)
                        retry.extend(queue)
                        broken = True
                        self._terminate_pool(pool)
                        return retry, True
        except KeyboardInterrupt:
            broken = True
            for future in futures:
                future.cancel()
            raise
        finally:
            self._shutdown_pool(pool, wait_for_workers=not broken)
        return retry, False

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-kill a pool whose workers no longer respond."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - best effort
                pass

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor,
                       wait_for_workers: bool) -> None:
        try:
            pool.shutdown(wait=wait_for_workers, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may complain
            pass


# ---------------------------------------------------------------------------
# Sweep checkpointing


class CheckpointJournal:
    """Append-only journal of completed sweep jobs, for ``--resume``.

    The journal is a JSONL file: a header line binding it to one sweep
    grid (via :func:`stable_digest` of the grid spec), then one record
    per completed job keyed by :attr:`Job.key`.  Appends are flushed and
    fsynced, so a crash or Ctrl-C loses at most the record being
    written; :meth:`load` tolerates a truncated trailing line for
    exactly that reason.  A journal whose header does not match the
    current grid (the sweep definition changed) is ignored wholesale
    rather than resumed into a mixed artifact.
    """

    SCHEMA = 1

    def __init__(self, path: os.PathLike, grid_key: str) -> None:
        self.path = Path(path)
        self.grid_key = grid_key

    def load(self) -> Optional[Dict[str, Any]]:
        """Return ``{job_key: record}`` for a compatible journal.

        ``None`` means "nothing to resume": the file is missing, its
        header is unreadable, or it describes a different grid.
        Undecodable lines after a valid header (torn writes) are
        skipped, salvaging every record before them.
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if (not isinstance(header, dict)
                or header.get("schema") != self.SCHEMA
                or header.get("grid") != self.grid_key):
            return None
        records: Dict[str, Any] = {}
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing write: keep what we have
            if isinstance(entry, dict) and "key" in entry:
                records[entry["key"]] = entry
        return records

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably journal one completed job."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as fh:
            if fresh:
                fh.write(json.dumps({"schema": self.SCHEMA,
                                     "grid": self.grid_key}) + "\n")
            fh.write(json.dumps({"key": key, **record},
                                sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def discard(self) -> None:
        """Delete the journal (sweep completed; artifact published)."""
        try:
            self.path.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Shared default runner (what experiments use when none is passed)

_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide shared :class:`Runner`.

    Configured from the environment on first use: ``$REPRO_JOBS`` sets
    the worker count, ``$REPRO_NO_CACHE`` disables the on-disk cache,
    ``$REPRO_CACHE_DIR`` relocates it.  Experiment modules route through
    this instance unless an explicit runner is supplied, which is what
    lets one figure's simulations satisfy another's.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner(workers=None)
    return _default_runner


def set_default_runner(runner: Optional[Runner]) -> Optional[Runner]:
    """Replace the shared runner (CLI flags, tests); returns the old one."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
