"""Shared execution engine for every experiment and benchmark.

All of the paper's evaluation artifacts reduce to the same primitive:
simulate a ``(workload, GpuConfig)`` pair and keep the
:class:`~repro.gpu.results.KernelRunResult`.  The figure/table modules
used to do that serially and independently, re-simulating identical
pairs many times per regeneration.  This module centralizes the
primitive:

* :class:`Job` names one simulation request.  Jobs are keyed by the
  workload's registry name, its factory keyword arguments, and a stable
  digest of the :class:`~repro.gpu.config.GpuConfig` dataclass, so two
  experiments asking for the same simulation share one execution.
* :class:`Runner` deduplicates a batch of jobs, consults an on-disk
  :class:`ResultCache`, and fans cache misses out across a
  ``concurrent.futures.ProcessPoolExecutor``.  Workloads are rebuilt
  from :data:`~repro.kernels.WORKLOAD_REGISTRY` by name inside each
  worker, so nothing unpicklable ever crosses the process boundary.
* :class:`ResultCache` stores pickled results keyed by job identity plus
  a *code salt* — a digest of the simulator's own source — so editing
  the timing model invalidates everything while an unrelated edit (an
  experiment harness, the CLI, docs) keeps the cache warm.

Every simulation is deterministic (workload factories seed their RNGs),
so parallel and cached runs are bit-identical to serial cold runs.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
import pickle
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .gpu.config import GpuConfig
from .gpu.results import KernelRunResult

#: Bump when the cached payload layout changes incompatibly.
CACHE_SCHEMA = 1

#: Subpackages whose source participates in the cache code salt: exactly
#: the ones that can change what a simulation measures.
_SIM_PACKAGES = ("core", "eu", "gpu", "isa", "kernels", "memory", "trace")

_inline_ids = itertools.count()


# ---------------------------------------------------------------------------
# Stable keying


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to JSON-serializable data with a stable ordering."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, Mapping):
        return {str(key): _canonical(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!r} values"
    )


def stable_digest(obj: Any) -> str:
    """Hex digest of *obj*'s canonical JSON form (config/params keying)."""
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def config_digest(config: GpuConfig) -> str:
    """Stable short digest of a :class:`GpuConfig` (nested dataclasses included)."""
    return stable_digest(config)


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of the simulator's own source files.

    Any edit to the packages that define what a simulation *measures*
    (cycle model, EU, memory hierarchy, ISA, kernels) changes the salt
    and therefore invalidates every cache entry; edits elsewhere
    (experiments, analysis, CLI, this module's orchestration) do not.
    """
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parent
    for package in _SIM_PACKAGES:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    digest.update(f"schema={CACHE_SCHEMA}".encode("utf-8"))
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Jobs


class Job:
    """One simulation request: a workload plus the config to run it under.

    Args:
        workload: registry name (see :data:`repro.kernels.WORKLOAD_REGISTRY`)
            or, for inline-factory jobs, a display label.
        config: machine parameters for the run (default :class:`GpuConfig`).
        params: keyword arguments for the workload factory (problem
            sizes, SIMD width, ...).  Part of the job's identity.
        factory: optional zero/keyword-arg callable returning a fresh
            :class:`~repro.kernels.workload.Workload`.  Inline-factory
            jobs run in the parent process and are never cached (the
            callable has no stable identity); prefer registry names.
        verify: run the workload's host reference check after simulating.
    """

    __slots__ = ("workload", "config", "params", "factory", "verify",
                 "_inline_id", "_key")

    def __init__(
        self,
        workload: str,
        config: Optional[GpuConfig] = None,
        params: Optional[Mapping[str, Any]] = None,
        factory: Optional[Callable[..., Any]] = None,
        verify: bool = True,
    ) -> None:
        self.workload = workload
        self.config = config if config is not None else GpuConfig()
        self.params: Tuple[Tuple[str, Any], ...] = tuple(
            sorted((params or {}).items())
        )
        self.factory = factory
        self.verify = verify
        self._inline_id = None if factory is not None else -1
        if factory is None:
            from .kernels import WORKLOAD_REGISTRY

            if workload not in WORKLOAD_REGISTRY:
                raise KeyError(
                    f"unknown workload {workload!r}; pass factory= for "
                    f"out-of-registry workloads"
                )
        else:
            self._inline_id = next(_inline_ids)
        self._key = self._compute_key()

    def _compute_key(self) -> str:
        parts = [
            self.workload,
            stable_digest(dict(self.params)),
            config_digest(self.config),
        ]
        if self.factory is not None:
            # Inline factories have no stable identity: make the key
            # unique so two different callables never alias.
            parts.append(f"inline{self._inline_id}")
        return "|".join(parts)

    @property
    def key(self) -> str:
        """Identity of this job within a batch (and, if cacheable, on disk)."""
        return self._key

    @property
    def cacheable(self) -> bool:
        return self.factory is None

    def build(self):
        """Instantiate a fresh workload for this job."""
        if self.factory is not None:
            return self.factory(**dict(self.params))
        from .kernels import WORKLOAD_REGISTRY

        return WORKLOAD_REGISTRY[self.workload](**dict(self.params))

    def execute(self) -> KernelRunResult:
        """Simulate this job in the current process."""
        from .kernels.workload import run_workload

        return run_workload(self.build(), self.config, verify=self.verify)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Job) and self._key == other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.workload!r}, params={dict(self.params)!r})"


def _execute_named(workload: str, params: Tuple[Tuple[str, Any], ...],
                   config: GpuConfig, verify: bool) -> KernelRunResult:
    """Process-pool entry point: rebuild the workload by name and run it."""
    from .kernels import WORKLOAD_REGISTRY
    from .kernels.workload import run_workload

    instance = WORKLOAD_REGISTRY[workload](**dict(params))
    return run_workload(instance, config, verify=verify)


# ---------------------------------------------------------------------------
# On-disk result cache


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-sim"


class ResultCache:
    """Content-keyed pickle store of :class:`KernelRunResult`.

    Entry names combine the (sanitized) workload name, the job key, and
    the code salt; a corrupted or unreadable entry is treated as a miss
    (and removed) so the job falls back to re-simulation.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else code_salt()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, job: Job) -> Path:
        name = re.sub(r"[^A-Za-z0-9_.-]", "_", job.workload)
        digest = hashlib.sha256(
            f"{job.key}|{self.salt}".encode("utf-8")
        ).hexdigest()[:32]
        return self.root / f"{name}-{digest}.pkl"

    def load(self, job: Job) -> Optional[KernelRunResult]:
        path = self.path_for(job)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            result = pickle.loads(data)
            if not isinstance(result, KernelRunResult):
                raise TypeError(f"cache entry holds {type(result).__name__}")
        except Exception:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, job: Job, result: KernelRunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(job)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)  # atomic even with concurrent writers

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Runner


@dataclass
class JobEvent:
    """Progress callback payload: one job was resolved."""

    job: Job
    status: str  # "cached" | "executed"
    elapsed: float  # seconds spent resolving this job
    index: int  # 1-based position among the batch's unique jobs
    total: int  # number of unique jobs in the batch


@dataclass
class RunStats:
    """Accounting for one :meth:`Runner.run` batch."""

    requested: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0


class Runner:
    """Deduplicating, caching, parallel executor of simulation jobs.

    Args:
        workers: process count for cache misses.  1 (default) runs
            serially in-process; ``None`` reads ``$REPRO_JOBS``.
        cache: a :class:`ResultCache`, a path for one, ``None``/"default"
            for the default location, or ``False`` to disable caching.
        verify: master switch for host reference checks (AND-ed with each
            job's own flag).
        progress: optional callable receiving a :class:`JobEvent` as each
            unique job resolves.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Any = "default",
        verify: bool = True,
        progress: Optional[Callable[[JobEvent], None]] = None,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_JOBS", "1") or "1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if cache is False or cache is None:
            self.cache: Optional[ResultCache] = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        elif cache == "default":
            self.cache = (None if os.environ.get("REPRO_NO_CACHE")
                          else ResultCache())
        else:
            self.cache = ResultCache(cache)
        self.verify = verify
        self.progress = progress
        self.last_stats = RunStats()
        # Cumulative counters across the runner's lifetime (test hooks).
        self.total_executed = 0
        self.total_cache_hits = 0

    # -- public API --------------------------------------------------------

    def run_one(self, workload: str, config: Optional[GpuConfig] = None,
                **params: Any) -> KernelRunResult:
        """Run a single registry workload through the engine."""
        job = Job(workload, config, params=params)
        return self.run([job])[job]

    def run(self, jobs: Iterable[Job]) -> Dict[Job, KernelRunResult]:
        """Resolve a batch of jobs; returns ``{job: result}``.

        Duplicate jobs (same workload, params, and config) are simulated
        once; every requested job still appears as a key in the returned
        mapping, so callers can look results up with their own objects.
        """
        start = time.perf_counter()
        requested = list(jobs)
        unique: Dict[str, Job] = {}
        for job in requested:
            unique.setdefault(job.key, job)

        stats = RunStats(requested=len(requested), unique=len(unique))
        results: Dict[str, KernelRunResult] = {}
        pending: List[Job] = []
        progress_index = 0

        def emit(job: Job, status: str, elapsed: float) -> None:
            nonlocal progress_index
            progress_index += 1
            if self.progress is not None:
                self.progress(JobEvent(job, status, elapsed,
                                       progress_index, len(unique)))

        for key, job in unique.items():
            cached = (self.cache.load(job)
                      if self.cache is not None and job.cacheable else None)
            if cached is not None:
                results[key] = cached
                stats.cache_hits += 1
                emit(job, "cached", 0.0)
            else:
                pending.append(job)

        named = [job for job in pending if job.cacheable]
        inline = [job for job in pending if not job.cacheable]

        if len(named) > 1 and self.workers > 1:
            self._run_pool(named, results, stats, emit)
        else:
            for job in named:
                self._run_local(job, results, stats, emit)
        for job in inline:
            self._run_local(job, results, stats, emit)

        stats.wall_seconds = time.perf_counter() - start
        self.last_stats = stats
        self.total_executed += stats.executed
        self.total_cache_hits += stats.cache_hits
        return {job: results[job.key] for job in requested}

    # -- execution paths ---------------------------------------------------

    def _finish(self, job: Job, result: KernelRunResult,
                results: Dict[str, KernelRunResult], stats: RunStats,
                emit, elapsed: float) -> None:
        results[job.key] = result
        stats.executed += 1
        if self.cache is not None and job.cacheable:
            self.cache.store(job, result)
        emit(job, "executed", elapsed)

    def _run_local(self, job: Job, results, stats, emit) -> None:
        from .kernels.workload import run_workload

        tick = time.perf_counter()
        result = run_workload(job.build(), job.config,
                              verify=job.verify and self.verify)
        self._finish(job, result, results, stats, emit,
                     time.perf_counter() - tick)

    def _run_pool(self, named: List[Job], results, stats, emit) -> None:
        workers = min(self.workers, len(named))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            started = {}
            for job in named:
                future = pool.submit(
                    _execute_named, job.workload, job.params, job.config,
                    job.verify and self.verify)
                futures[future] = job
                started[future] = time.perf_counter()
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures[future]
                    self._finish(job, future.result(), results, stats, emit,
                                 time.perf_counter() - started[future])


# ---------------------------------------------------------------------------
# Shared default runner (what experiments use when none is passed)

_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide shared :class:`Runner`.

    Configured from the environment on first use: ``$REPRO_JOBS`` sets
    the worker count, ``$REPRO_NO_CACHE`` disables the on-disk cache,
    ``$REPRO_CACHE_DIR`` relocates it.  Experiment modules route through
    this instance unless an explicit runner is supplied, which is what
    lets one figure's simulations satisfy another's.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner(workers=None)
    return _default_runner


def set_default_runner(runner: Optional[Runner]) -> Optional[Runner]:
    """Replace the shared runner (CLI flags, tests); returns the old one."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
