"""Plain-text table/series rendering for experiment reports.

Every benchmark harness prints its figure or table through these
helpers, so EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, labels: Sequence[str], values: Sequence[float],
                  unit: str = "") -> str:
    """Render one figure series as ``label: value`` lines with a bar."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    lines = [f"series {name}" + (f" ({unit})" if unit else "")]
    for label, value in zip(labels, values):
        bar = "#" * int(round(30 * abs(value) / peak))
        lines.append(f"  {label:24s} {value:10.3f} {bar}")
    return "\n".join(lines)


def pct(numerator: float, denominator: float) -> float:
    """Safe percentage; 0.0 when the denominator is zero."""
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator


def reduction_pct(baseline: float, optimized: float) -> Optional[float]:
    """Percent reduction from *baseline* to *optimized* (None if baseline 0)."""
    if baseline == 0:
        return None
    return 100.0 * (baseline - optimized) / baseline
