"""SIMD-efficiency studies: the data behind paper Figures 3 and 9.

Collects per-workload SIMD efficiency from both evaluation paths — the
execution-driven simulator (:mod:`repro.kernels`) and the trace profiler
(:mod:`repro.trace`) — classifies workloads into the paper's coherent
(>= 95 %) / divergent split, and computes the Figure 9 utilization
breakdown for the divergent subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.stats import CompactionStats, is_divergent
from ..gpu.config import GpuConfig
from ..kernels import FAULT_WORKLOADS, WORKLOAD_REGISTRY
from ..runner import Job, Runner, default_runner
from ..trace.profiler import profile_trace
from ..trace.workloads import TRACE_PROFILES, trace_events

#: Figure 9 bucket order (stacked from no-compaction down to 3-cycle savings).
FIG9_BUCKET_ORDER = ("13-16/16", "9-12/16", "5-8/16", "1-4/16", "5-8/8", "1-4/8")


@dataclass
class EfficiencyEntry:
    """One workload's Figure 3 data point."""

    name: str
    source: str  # "simulator" or "trace"
    simd_efficiency: float
    stats: CompactionStats

    @property
    def divergent(self) -> bool:
        return is_divergent(self.simd_efficiency)


def simulator_efficiencies(
    names: Optional[Iterable[str]] = None,
    config: Optional[GpuConfig] = None,
    runner: Optional[Runner] = None,
) -> List[EfficiencyEntry]:
    """Run simulator workloads and collect their SIMD efficiencies.

    Simulations go through the shared :mod:`repro.runner` engine as one
    batch, so results are deduplicated/cached with every other experiment.
    """
    config = config if config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    if names is None:  # fault-injection entries never join the studies
        names = (n for n in WORKLOAD_REGISTRY if n not in FAULT_WORKLOADS)
    ordered = list(names)
    jobs = {name: Job(name, config) for name in ordered}
    results = engine.run(jobs.values())
    return [
        EfficiencyEntry(
            name=name,
            source="simulator",
            simd_efficiency=results[jobs[name]].simd_efficiency,
            stats=results[jobs[name]].simd_stats,
        )
        for name in ordered
    ]


def trace_efficiencies(names: Optional[Iterable[str]] = None) -> List[EfficiencyEntry]:
    """Profile synthetic traces and collect their SIMD efficiencies."""
    entries = []
    for name in (names if names is not None else TRACE_PROFILES):
        profile = profile_trace(name, trace_events(name))
        entries.append(
            EfficiencyEntry(
                name=name,
                source="trace",
                simd_efficiency=profile.simd_efficiency,
                stats=profile.stats,
            )
        )
    return entries


def classify(entries: Iterable[EfficiencyEntry]) -> Tuple[List[EfficiencyEntry], List[EfficiencyEntry]]:
    """Split entries into (divergent, coherent) per the 95 % threshold."""
    divergent, coherent = [], []
    for entry in entries:
        (divergent if entry.divergent else coherent).append(entry)
    return divergent, coherent


def utilization_breakdown(entries: Iterable[EfficiencyEntry]) -> Dict[str, Dict[str, float]]:
    """Per-workload Figure 9 bucket fractions, in FIG9 bucket order.

    Buckets outside the canonical six — odd widths, fully masked-off
    instructions (``"0/16"``, ``"0/8"``) — are accounted explicitly:
    ``"other"`` is their summed fraction, never a ``1 - sum`` residue
    (which would silently absorb bucket-accounting bugs and rounding
    error).  Every row is checked to sum to 1.0; a workload with no
    instructions reports an all-zero row.
    """
    table: Dict[str, Dict[str, float]] = {}
    for entry in entries:
        fractions = entry.stats.bucket_fractions()
        row = {bucket: fractions.get(bucket, 0.0) for bucket in FIG9_BUCKET_ORDER}
        row["other"] = sum(fraction for label, fraction in fractions.items()
                           if label not in FIG9_BUCKET_ORDER)
        total = sum(row.values())
        if fractions and abs(total - 1.0) > 1e-9:
            raise AssertionError(
                f"utilization buckets for {entry.name!r} sum to {total!r}, "
                f"not 1.0 (bucket fractions: {fractions})"
            )
        table[entry.name] = row
    return table
