"""Analysis utilities: SIMD-efficiency studies and report rendering."""

from .efficiency import (
    FIG9_BUCKET_ORDER,
    EfficiencyEntry,
    classify,
    simulator_efficiencies,
    trace_efficiencies,
    utilization_breakdown,
)
from .report import format_series, format_table, pct, reduction_pct

__all__ = [
    "FIG9_BUCKET_ORDER",
    "EfficiencyEntry",
    "classify",
    "format_series",
    "format_table",
    "pct",
    "reduction_pct",
    "simulator_efficiencies",
    "trace_efficiencies",
    "utilization_breakdown",
]
