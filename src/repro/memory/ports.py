"""Bandwidth-limited transfer ports.

Two shared ports gate memory traffic in the model:

* the **data cluster** port between the EUs and the L3 cache — the DC1
  (one 64-byte line per cycle) vs DC2 (two lines per cycle) knob that
  paper Figure 11 and Table 4 sweep; and
* the **DRAM** port behind the LLC, whose lower bandwidth and long
  latency make workloads like BFS memory-bound (paper Figure 12).

A port serializes line transfers: each takes ``1 / lines_per_cycle``
cycles of port occupancy, and a transfer begins no earlier than both the
request time and the port's next free slot.
"""

from __future__ import annotations


class BandwidthPort:
    """A shared port transferring cache lines at a fixed peak rate."""

    def __init__(self, name: str, lines_per_cycle: float) -> None:
        if lines_per_cycle <= 0:
            raise ValueError(f"lines_per_cycle must be positive, got {lines_per_cycle}")
        self.name = name
        self.lines_per_cycle = lines_per_cycle
        self._next_free = 0.0
        self._cycles_per_line = 1.0 / lines_per_cycle
        self.lines_transferred = 0

    @property
    def cycles_per_line(self) -> float:
        return self._cycles_per_line

    def grant(self, now: float) -> float:
        """Reserve the next transfer slot at or after *now*.

        Returns the cycle at which the line begins transferring.
        """
        start = self._next_free
        if now > start:
            start = float(now)
        self._next_free = start + self._cycles_per_line
        self.lines_transferred += 1
        return start

    def next_free(self) -> float:
        """Earliest cycle a new transfer could start (no reservation)."""
        return self._next_free

    def throughput(self, total_cycles: int) -> float:
        """Achieved lines per cycle over a run of *total_cycles* cycles."""
        if total_cycles <= 0:
            return 0.0
        return self.lines_transferred / total_cycles

    def reset(self) -> None:
        self._next_free = 0.0
        self.lines_transferred = 0
