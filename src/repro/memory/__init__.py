"""Memory subsystem substrate: caches, ports, SLM, and the hierarchy.

Models the Ivy Bridge-like memory system of paper Section 2.3 / Table 3:
a shared L3 data cache behind a bandwidth-limited data cluster, the
CPU-shared LLC, DRAM, and per-workgroup banked shared local memory.
"""

from .cache import LINE_BYTES, Cache, CacheStats, lines_for_access
from .hierarchy import MemoryHierarchy, MemoryParams
from .ports import BandwidthPort
from .slm import SlmAllocation, SlmTiming

__all__ = [
    "LINE_BYTES",
    "BandwidthPort",
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "MemoryParams",
    "SlmAllocation",
    "SlmTiming",
    "lines_for_access",
]
