"""Shared local memory (SLM) model.

Paper Section 2.3: a group of EUs accesses "a highly banked and fast
shared local memory" through the data cluster; Table 3 gives 64 KB at 5
cycles.  Each workgroup owns an SLM allocation; scattered lane accesses
are spread over word-interleaved banks and serialize only on bank
conflicts, which is the behaviour divergent SLM access patterns exercise.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class SlmTiming:
    """Bank-conflict timing for one SLM instance."""

    def __init__(self, latency: int = 5, num_banks: int = 16, bank_word_bytes: int = 4):
        if latency < 1 or num_banks < 1 or bank_word_bytes < 1:
            raise ValueError("SLM parameters must be positive")
        self.latency = latency
        self.num_banks = num_banks
        self.bank_word_bytes = bank_word_bytes
        self.accesses = 0
        self.conflict_cycles = 0

    def access_cycles(self, offsets, exec_mask: int) -> int:
        """Cycles to satisfy one SLM message with per-lane byte *offsets*.

        Lanes hitting distinct words of the same bank serialize; lanes
        hitting the *same* word broadcast for free.  Cost is the base
        latency plus (worst bank serialization - 1).
        """
        per_bank: Dict[int, set] = {}
        for lane, off in enumerate(offsets):
            if not (exec_mask >> lane) & 1:
                continue
            word = int(off) // self.bank_word_bytes
            bank = word % self.num_banks
            per_bank.setdefault(bank, set()).add(word)
        worst = max((len(words) for words in per_bank.values()), default=1)
        self.accesses += 1
        self.conflict_cycles += worst - 1
        return self.latency + (worst - 1)


class SlmAllocation:
    """One workgroup's SLM storage (functional image)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"SLM size must be non-negative, got {size_bytes}")
        # Round up to 4 bytes so typed views always fit.
        padded = (size_bytes + 3) & ~3
        self.size_bytes = size_bytes
        self.data = np.zeros(max(padded, 4), dtype=np.uint8)
