"""Set-associative cache model with LRU replacement.

Used for both the GPU L3 data cache and the CPU-shared last-level cache
(paper Table 3).  The model tracks presence only — data always lives in
the functional memory image — so a lookup answers "hit or miss" and
updates replacement state; latencies are charged by the hierarchy.

Lines are identified by hashable ids, ``(surface_index, line_number)``
in this simulator, so distinct buffers never alias.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

#: Cache line size used throughout the model (bytes).
LINE_BYTES = 64


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction; 1.0 for an untouched cache (nothing missed)."""
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses


class Cache:
    """A set-associative, LRU, presence-only cache.

    Args:
        name: label used in reports.
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: line size (64 in the studied architecture).
        perfect: when True every access hits (the "perfect L3" model of
            paper Figure 12).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = LINE_BYTES,
        perfect: bool = False,
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines % assoc != 0:
            raise ValueError(
                f"{name}: {num_lines} lines not divisible by associativity {assoc}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = num_lines // assoc
        self.perfect = perfect
        self.stats = CacheStats()
        # Per set: OrderedDict of line_id -> None, most recent last.
        self._sets: Dict[int, OrderedDict] = {}

    def _set_index(self, line_id: Hashable) -> int:
        return hash(line_id) % self.num_sets

    def access(self, line_id: Hashable) -> bool:
        """Look up *line_id*, filling on miss.  Returns True on hit."""
        if self.perfect:
            self.stats.hits += 1
            return True
        sets = self._sets
        index = hash(line_id) % self.num_sets
        way = sets.get(index)
        if way is None:
            way = sets[index] = OrderedDict()
        if line_id in way:
            way.move_to_end(line_id)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        way[line_id] = None
        if len(way) > self.assoc:
            way.popitem(last=False)  # evict LRU
        return False

    def contains(self, line_id: Hashable) -> bool:
        """Presence check without side effects (tests/debug)."""
        if self.perfect:
            return True
        way = self._sets.get(self._set_index(line_id))
        return way is not None and line_id in way

    def invalidate_all(self) -> None:
        """Drop all cached lines (between-kernel cleanup in experiments)."""
        self._sets.clear()


def lines_for_access(offsets, size: int, line_bytes: int = LINE_BYTES) -> Tuple[int, ...]:
    """Distinct cache-line numbers touched by per-lane byte *offsets*.

    This is the paper's *memory divergence* quantity: the number of
    distinct line requests a single SIMD memory instruction generates.
    Each access of *size* bytes may straddle two lines.
    """
    lines = set()
    for off in offsets:
        off = int(off)
        lines.add(off // line_bytes)
        last_byte = off + size - 1
        lines.add(last_byte // line_bytes)
    return tuple(sorted(lines))
