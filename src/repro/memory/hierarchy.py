"""The GPU memory hierarchy: data cluster -> L3 -> LLC -> DRAM.

Paper Section 2.3 and Table 3: all EUs share an L3 data cache reached
through a bandwidth-limited *data cluster* interface; L3 misses look up
the CPU-shared last-level cache and finally DRAM.  The hierarchy here
charges latency and shared-port occupancy per distinct 64-byte line a
SIMD memory message touches — the quantity the paper calls *memory
divergence*.

Timing for one message: every distinct line acquires a data-cluster slot
(DC1 = 1 line/cycle, DC2 = 2 lines/cycle across all EUs), then pays the
L3 latency on a hit, plus the LLC latency on an L3 miss, plus a DRAM
port slot and the DRAM latency on an LLC miss.  The message completes
when its last line arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from .cache import LINE_BYTES, Cache
from .ports import BandwidthPort


@dataclass
class MemoryParams:
    """Memory-system configuration (defaults are paper Table 3 / DC1)."""

    l3_size: int = 128 * 1024
    l3_assoc: int = 64
    l3_latency: int = 7
    llc_size: int = 2 * 1024 * 1024
    llc_assoc: int = 16
    llc_latency: int = 10
    dram_latency: int = 200
    dram_lines_per_cycle: float = 0.25
    dc_lines_per_cycle: float = 1.0  # DC1; Figure 11's DC2 uses 2.0
    perfect_l3: bool = False

    def validate(self) -> None:
        if self.l3_latency < 1 or self.llc_latency < 1 or self.dram_latency < 1:
            raise ValueError("latencies must be >= 1 cycle")
        if self.dc_lines_per_cycle <= 0 or self.dram_lines_per_cycle <= 0:
            raise ValueError("port bandwidths must be positive")


class MemoryHierarchy:
    """Shared memory system timing model for the whole GPU."""

    def __init__(self, params: MemoryParams, telemetry=None) -> None:
        params.validate()
        self.params = params
        #: Optional run-level TelemetryCollector (None when off): every
        #: SIMD memory message then becomes a span on the "gpu/mem"
        #: track plus hit/miss counters.
        self.telemetry = telemetry
        self.l3 = Cache(
            "L3", params.l3_size, params.l3_assoc, LINE_BYTES, perfect=params.perfect_l3
        )
        self.llc = Cache("LLC", params.llc_size, params.llc_assoc, LINE_BYTES)
        self.data_cluster = BandwidthPort("data-cluster", params.dc_lines_per_cycle)
        self.dram = BandwidthPort("dram", params.dram_lines_per_cycle)
        self.messages = 0
        self.lines_requested = 0

    def access(self, now: int, line_ids: Iterable[Tuple[int, int]]) -> int:
        """Process one SIMD memory message touching *line_ids*.

        Args:
            now: issue cycle of the message.
            line_ids: distinct ``(surface, line_number)`` pairs.

        Returns:
            Completion cycle (all lines delivered).
        """
        if type(line_ids) is not tuple and type(line_ids) is not list:
            line_ids = tuple(line_ids)
        self.messages += 1
        self.lines_requested += len(line_ids)
        tel = self.telemetry
        l3_hits_before = self.l3.stats.hits if tel is not None else 0
        completion = float(now)
        for line_id in line_ids:
            start = self.data_cluster.grant(now)
            done = start + self.params.l3_latency
            if not self.l3.access(line_id):
                done += self.params.llc_latency
                if not self.llc.access(line_id):
                    dram_start = self.dram.grant(done)
                    done = dram_start + self.params.dram_latency
            completion = max(completion, done)
        completed = int(round(completion))
        if tel is not None:
            hits = self.l3.stats.hits - l3_hits_before
            counters = tel.counters
            counters.incr("memory.messages")
            counters.incr("memory.lines", len(line_ids))
            counters.incr("memory.l3_hits", hits)
            counters.incr("memory.l3_misses", len(line_ids) - hits)
            tel.span("gpu/mem", "mem_message", now, completed - now,
                     {"lines": len(line_ids), "l3_hits": hits})
        return completed

    def memory_divergence(self) -> float:
        """Average distinct line requests per memory message (paper metric)."""
        if self.messages == 0:
            return 0.0
        return self.lines_requested / self.messages

    def reset_ports(self) -> None:
        """Reset port reservations between kernel launches (caches persist)."""
        self.data_cluster.reset()
        self.dram.reset()
