"""Cross-policy differential verification harness (``repro verify``).

Three evidence layers certify that the simulator's four compaction
policies (RAW/IVB/BCC/SCC) are timing-only variants of one machine:

1. :mod:`repro.verify.differential` — every registered workload run
   under all four policies with bit-identical outputs, identical
   instruction streams/statistics, and ordered cycle counts;
2. :mod:`repro.verify.properties` — randomized property checks of the
   analytic cycle models, SCC schedules, crossbar control words, and
   stats accumulators, plus a simulator-vs-trace-profiler replay check;
3. :mod:`repro.verify.report` — the typed violation report and JSON
   artifact both layers feed, with :mod:`repro.errors` exit codes.

A fourth, engine-parity layer (:mod:`repro.verify.engines`) runs each
workload under both execution engines — the interleaved interpreter and
the two-phase functional+replay fast core — and requires bit-identical
digests, instruction counts, stats fingerprints, and (for
mask-deterministic workloads) exact ``total_cycles``.  It is on by
default; ``repro verify --no-engine-parity`` skips it.

:func:`run_verify` is the orchestration entry point the CLI wraps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..gpu.config import GpuConfig
from ..runner import Runner
from .differential import (
    TIMED_ORDERING_TOLERANCE,
    VERIFIED_POLICIES,
    run_differential,
    verifiable_workloads,
    verify_workload_results,
)
from .engines import (
    ENGINE_TIMING_TOLERANCE,
    run_engine_parity,
    verify_engine_results,
)
from .properties import fuzz_masks, random_mask, verify_sim_vs_profiler
from .report import (
    ARTIFACT_SCHEMA,
    PropertyReport,
    VerifyReport,
    Violation,
    WorkloadVerdict,
    error_verdict,
)

#: Workloads the simulator-vs-profiler replay runs on by default: small
#: and shape-diverse (coherent, data-divergent, nested-control-flow,
#: loop-divergent), because these runs are in-process and uncached.
SIM_VS_PROFILER_DEFAULT = ("va", "gnoise", "bsearch", "bsort")


def run_verify(
    names: Optional[Sequence[str]] = None,
    base_config: Optional[GpuConfig] = None,
    runner: Optional[Runner] = None,
    fuzz_iterations: int = 500,
    seed: int = 0,
    profiler_names: Optional[Sequence[str]] = None,
    timed_tolerance: float = TIMED_ORDERING_TOLERANCE,
    engine_parity: bool = True,
) -> VerifyReport:
    """Run the full verification harness and aggregate one report.

    *names* defaults to every non-fault registry workload.  Differential
    simulations go through the shared runner (parallel + cached); the
    fuzz layer is pure analytics; the sim-vs-profiler replay runs on
    *profiler_names* (default: a small shape-diverse subset of *names*).
    With *engine_parity* (the default), each workload additionally runs
    under both execution engines and the results are cross-checked —
    the interp leg dedupes against the differential runs through the
    result cache, so the marginal cost is one fast run per workload.
    """
    workload_names = list(names) if names is not None else verifiable_workloads()
    report = VerifyReport()
    report.workloads = run_differential(workload_names, base_config, runner,
                                        timed_tolerance=timed_tolerance)
    if engine_parity:
        report.workloads.extend(
            run_engine_parity(workload_names, base_config, runner))
    if fuzz_iterations > 0:
        report.properties.extend(fuzz_masks(fuzz_iterations, seed=seed))
    if profiler_names is None:
        profiler_names = [name for name in SIM_VS_PROFILER_DEFAULT
                          if name in workload_names]
    if profiler_names:
        report.properties.append(
            verify_sim_vs_profiler(profiler_names, base_config))
    return report


__all__ = [
    "ARTIFACT_SCHEMA",
    "ENGINE_TIMING_TOLERANCE",
    "PropertyReport",
    "SIM_VS_PROFILER_DEFAULT",
    "TIMED_ORDERING_TOLERANCE",
    "VERIFIED_POLICIES",
    "VerifyReport",
    "Violation",
    "WorkloadVerdict",
    "error_verdict",
    "fuzz_masks",
    "random_mask",
    "run_differential",
    "run_engine_parity",
    "run_verify",
    "verifiable_workloads",
    "verify_engine_results",
    "verify_sim_vs_profiler",
    "verify_workload_results",
]
