"""Property/fuzz layer of the verification harness.

Where :mod:`repro.verify.differential` cross-checks whole simulations,
this module attacks the analytic core directly: random ``(mask, width,
dtype_factor)`` streams are pushed through the cycle models, the SCC
schedule builder, the crossbar control-word encoder, and the stats
accumulators, and every paper-level invariant is asserted per case:

* **cycle-model** — per-instruction ordering ``SCC <= BCC <= IVB <= RAW``
  (with ``min_cycles`` of both 0 and 1), ``scc_cycles ==
  ceil(popcount/4) * dtype_factor == schedule length``, ``bcc_cycles ==
  active quads * dtype_factor``, and exact ``dtype_factor`` scaling;
* **schedule-partition** — every SCC schedule executes each active lane
  exactly once, never an inactive lane, never two elements on one ALU
  output slot;
* **unswizzle-inversion** — the write-back routing is the exact inverse
  permutation of the operand crossbar settings, cycle by cycle;
* **crossbar-roundtrip** — hardware control words encode/decode
  losslessly and the number of *activated* crossbar routes (source lane
  != output lane) equals ``SccSchedule.swizzle_count``;
* **stats-profiler-agreement** — :class:`~repro.core.stats.CompactionStats`
  fed by ``record`` and the trace profiler replaying the identical event
  stream agree on every counter, and merging split halves of a stream
  equals accumulating it whole.

:func:`verify_sim_vs_profiler` closes the loop between the two
evaluation paths of the paper (Section 5.1): the execution-driven
simulator's per-run ALU statistics must match an offline
:func:`~repro.trace.profiler.profile_trace` replay of the very trace the
run emitted.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.policy import POLICY_ORDER, CompactionPolicy, cycles_all_policies
from ..core.quads import (
    QUAD_WIDTH,
    active_quad_count,
    clamp_mask,
    optimal_cycles,
    popcount,
)
from ..core.scc import scc_cycles, scc_schedule, swizzle_settings_for_cycle
from ..core.scc_hw import decode_cycle, encode_cycle
from ..core.stats import CompactionStats
from ..gpu.config import GpuConfig
from ..trace.format import TraceEvent
from ..trace.profiler import profile_trace
from .report import PropertyReport, Violation

#: SIMD widths the fuzzer draws from (the multi-quad widths — SIMD1/4
#: are single-quad and degenerate for compaction).
FUZZ_WIDTHS: Tuple[int, ...] = (8, 16, 32)

#: Stats counters the profiler reproduces exactly from a trace.  The
#: ``rf_accesses_*`` counters are deliberately absent: traces carry no
#: operand counts, so the profiler records with the default 2-src/1-dst
#: shape while the simulator uses each instruction's real operands.
STREAM_COUNTERS: Tuple[str, ...] = (
    "instructions",
    "enabled_lane_slots",
    "issued_lane_slots",
    "scc_swizzles",
)


def random_mask(rng: random.Random, width: int) -> int:
    """Draw an execution mask biased toward interesting divergence shapes."""
    shape = rng.randrange(6)
    full = (1 << width) - 1
    if shape == 0:
        return 0  # fully masked off
    if shape == 1:
        return full  # fully coherent
    if shape == 2:
        return 1 << rng.randrange(width)  # single lane
    if shape == 3:  # sparse: few lanes
        lanes = rng.sample(range(width), k=rng.randrange(1, max(2, width // 4)))
        return sum(1 << lane for lane in lanes)
    if shape == 4:  # dense: few holes
        mask = full
        for lane in rng.sample(range(width), k=rng.randrange(1, max(2, width // 4))):
            mask &= ~(1 << lane)
        return mask
    return rng.getrandbits(width)  # uniform


def _fingerprint(stats: CompactionStats) -> Dict[str, object]:
    """Trace-reproducible counters of one accumulator (see STREAM_COUNTERS)."""
    fp: Dict[str, object] = {name: getattr(stats, name) for name in STREAM_COUNTERS}
    fp["cycles"] = {policy.value: stats.cycles[policy] for policy in POLICY_ORDER}
    fp["buckets"] = dict(sorted(stats.bucket_counts.items()))
    return fp


def _check_cycle_model(mask: int, width: int, factor: int,
                       case: str) -> List[Violation]:
    violations: List[Violation] = []
    scope = "property:cycle-model"
    for min_cycles in (0, 1):
        cycles = cycles_all_policies(mask, width, factor, min_cycles)
        ordered = [cycles[policy] for policy in POLICY_ORDER]
        if ordered != sorted(ordered, reverse=True):
            violations.append(Violation(
                scope=scope, check="policy-ordering",
                message=f"{case} min_cycles={min_cycles}: "
                        f"RAW>=IVB>=BCC>=SCC broken: "
                        + ", ".join(f"{p.value}={cycles[p]}"
                                    for p in POLICY_ORDER)))
    schedule = scc_schedule(mask, width)
    optimum = optimal_cycles(mask, width)
    if schedule.cycle_count != optimum:
        violations.append(Violation(
            scope=scope, check="scc-schedule-length",
            message=f"{case}: schedule has {schedule.cycle_count} cycles, "
                    f"optimal is {optimum}"))
    if scc_cycles(mask, width, factor) != optimum * factor:
        violations.append(Violation(
            scope=scope, check="scc-cycles-formula",
            message=f"{case}: scc_cycles={scc_cycles(mask, width, factor)} "
                    f"!= ceil(popcount/4)*factor={optimum * factor}"))
    from ..core.bcc import bcc_cycles
    if bcc_cycles(mask, width, factor) != active_quad_count(mask, width) * factor:
        violations.append(Violation(
            scope=scope, check="bcc-cycles-formula",
            message=f"{case}: bcc_cycles="
                    f"{bcc_cycles(mask, width, factor)} != "
                    f"active_quads*factor="
                    f"{active_quad_count(mask, width) * factor}"))
    base = cycles_all_policies(mask, width, 1, 0)
    scaled = cycles_all_policies(mask, width, factor, 0)
    for policy in POLICY_ORDER:
        if scaled[policy] != base[policy] * factor:
            violations.append(Violation(
                scope=scope, check="dtype-scaling",
                message=f"{case}: {policy.value} cycles do not scale "
                        f"linearly with dtype_factor: "
                        f"{scaled[policy]} != {base[policy]} * {factor}"))
    return violations


def _check_schedule(mask: int, width: int, case: str) -> List[Violation]:
    violations: List[Violation] = []
    schedule = scc_schedule(mask, width)

    # Partition: each active lane exactly once, nothing else.
    covered = sorted(schedule.covered_lanes())
    expected = [lane for lane in range(width) if (mask >> lane) & 1]
    if covered != expected:
        violations.append(Violation(
            scope="property:schedule-partition", check="lane-partition",
            message=f"{case}: schedule covers lanes {covered}, "
                    f"active lanes are {expected}"))

    unswizzle = schedule.unswizzle_settings()
    if len(unswizzle) != schedule.cycle_count:
        violations.append(Violation(
            scope="property:unswizzle-inversion", check="cycle-count",
            message=f"{case}: {len(unswizzle)} unswizzle cycles for "
                    f"{schedule.cycle_count} schedule cycles"))
    swizzles_seen = 0
    for index, cycle in enumerate(schedule.cycles):
        settings = swizzle_settings_for_cycle(cycle)

        # Inversion: routing each driven output lane's result through the
        # unswizzle settings must land exactly on the (quad, src_lane)
        # register position the operand crossbar read it from.
        inverse = {out_lane: (quad, dst_lane)
                   for out_lane, quad, dst_lane in unswizzle[index]}
        forward = {out_lane: source
                   for out_lane, source in enumerate(settings)
                   if source is not None}
        if inverse != forward:
            violations.append(Violation(
                scope="property:unswizzle-inversion", check="inversion",
                message=f"{case} cycle {index}: unswizzle {inverse} is not "
                        f"the inverse of swizzle {forward}"))

        # Hardware round-trip: the packed control word must decode back
        # to the same lane-slot assignments, and the number of activated
        # crossbar routes (source lane moved) must match swizzle_count.
        decoded = decode_cycle(encode_cycle(cycle, width))
        if sorted(decoded, key=lambda s: s.out_lane) != \
                sorted(cycle, key=lambda s: s.out_lane):
            violations.append(Violation(
                scope="property:crossbar-roundtrip", check="encode-decode",
                message=f"{case} cycle {index}: control word round-trip "
                        f"changed the schedule: {decoded} != {cycle}"))
        swizzles_seen += sum(1 for slot in decoded
                             if slot.src_lane != slot.out_lane)
    if swizzles_seen != schedule.swizzle_count:
        violations.append(Violation(
            scope="property:crossbar-roundtrip", check="swizzle-count",
            message=f"{case}: {swizzles_seen} activated crossbar routes "
                    f"!= swizzle_count {schedule.swizzle_count}"))
    return violations


def _check_stats_stream(events: Sequence[TraceEvent], seed: int) -> List[Violation]:
    """Stats/profiler/merge agreement over one random event stream."""
    violations: List[Violation] = []
    case = f"stream(seed={seed}, n={len(events)})"

    direct = CompactionStats(min_cycles=1)
    for event in events:
        direct.record(event.mask, event.width, event.dtype_factor)
    profiled = profile_trace("fuzz", events, min_cycles=1).stats
    if _fingerprint(direct) != _fingerprint(profiled):
        diffs = [key for key in _fingerprint(direct)
                 if _fingerprint(direct)[key] != _fingerprint(profiled)[key]]
        violations.append(Violation(
            scope="property:stats-profiler-agreement", check="stream-replay",
            message=f"{case}: profiler replay disagrees with direct "
                    f"accumulation in: {', '.join(diffs)}"))

    split = len(events) // 2
    left, right = CompactionStats(min_cycles=1), CompactionStats(min_cycles=1)
    for event in events[:split]:
        left.record(event.mask, event.width, event.dtype_factor)
    for event in events[split:]:
        right.record(event.mask, event.width, event.dtype_factor)
    left.merge(right)
    if _fingerprint(left) != _fingerprint(direct) or (
            left.rf_accesses_baseline != direct.rf_accesses_baseline
            or left.rf_accesses_bcc != direct.rf_accesses_bcc):
        violations.append(Violation(
            scope="property:stats-profiler-agreement", check="merge",
            message=f"{case}: merged split-halves accumulator disagrees "
                    f"with whole-stream accumulation"))
    return violations


def fuzz_masks(
    iterations: int = 500,
    seed: int = 0,
    widths: Sequence[int] = FUZZ_WIDTHS,
) -> List[PropertyReport]:
    """Fuzz the analytic core for *iterations* random cases per family."""
    rng = random.Random(seed)
    cycle_model: List[Violation] = []
    schedule: List[Violation] = []
    for _ in range(iterations):
        width = rng.choice(list(widths))
        mask = clamp_mask(random_mask(rng, width), width)
        factor = rng.choice((1, 1, 1, 2))  # mostly 32-bit, some 64-bit
        case = f"mask=0x{mask:X}/width={width}/factor={factor}"
        cycle_model.extend(_check_cycle_model(mask, width, factor, case))
        schedule.extend(_check_schedule(mask, width, case))

    stream_cases = max(1, iterations // 50)
    stream: List[Violation] = []
    for index in range(stream_cases):
        events = []
        for _ in range(rng.randrange(20, 200)):
            width = rng.choice(list(widths))
            events.append(TraceEvent(
                width=width,
                mask=clamp_mask(random_mask(rng, width), width),
                dtype_factor=rng.choice((1, 1, 2)),
            ))
        stream.extend(_check_stats_stream(events, seed=seed + index))

    def split(violations: List[Violation], scope: str) -> List[Violation]:
        return [v for v in violations if v.scope == f"property:{scope}"]

    return [
        PropertyReport("cycle-model", iterations, cycle_model, seed),
        PropertyReport("schedule-partition", iterations,
                       split(schedule, "schedule-partition"), seed),
        PropertyReport("unswizzle-inversion", iterations,
                       split(schedule, "unswizzle-inversion"), seed),
        PropertyReport("crossbar-roundtrip", iterations,
                       split(schedule, "crossbar-roundtrip"), seed),
        PropertyReport("stats-profiler-agreement", stream_cases, stream, seed),
    ]


def verify_sim_vs_profiler(
    names: Iterable[str],
    config: Optional[GpuConfig] = None,
) -> PropertyReport:
    """Cross-check the simulator against the trace profiler per workload.

    Runs each workload in-process with a trace sink attached, then
    replays the captured event stream through
    :func:`~repro.trace.profiler.profile_trace` and requires the offline
    statistics to match the simulator's own ALU accumulator exactly
    (modulo the RF-access counters, which traces cannot carry).  This is
    the paper's two-methodology consistency argument made executable, so
    keep the workload list small — these runs bypass the cache.
    """
    from ..kernels import WORKLOAD_REGISTRY
    from ..kernels.workload import run_workload

    base = config if config is not None else GpuConfig()
    violations: List[Violation] = []
    ordered = list(names)
    for name in ordered:
        sink: List[TraceEvent] = []
        result = run_workload(WORKLOAD_REGISTRY[name](), base,
                              trace_sink=sink)
        replayed = profile_trace(name, sink, min_cycles=1).stats
        sim_fp, trace_fp = _fingerprint(result.alu_stats), _fingerprint(replayed)
        if sim_fp != trace_fp:
            diffs = [key for key in sim_fp if sim_fp[key] != trace_fp[key]]
            violations.append(Violation(
                scope="property:sim-vs-profiler", check="alu-stats",
                message=f"{name}: trace replay disagrees with the "
                        f"simulator's ALU stats in: {', '.join(diffs)} "
                        f"({len(sink)} traced events, simulator counted "
                        f"{result.alu_stats.instructions})"))
    return PropertyReport("sim-vs-profiler", len(ordered), violations)
