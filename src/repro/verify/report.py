"""Typed violation reporting for the cross-policy verification harness.

``repro verify`` produces a single :class:`VerifyReport` aggregating two
evidence streams:

* per-workload :class:`WorkloadVerdict` records from the differential
  runner (every registered workload simulated under all four compaction
  policies and cross-checked), and
* :class:`PropertyReport` records from the property/fuzz layer (random
  mask streams pushed through the analytic cycle models and schedule
  builders).

Every individual defect is a :class:`Violation` — a typed record, not a
log line — so the CLI, the JSON artifact, and CI can all consume the
same structure.  Exit codes reuse the :mod:`repro.errors` contract: a
clean report exits 0, any invariant violation exits like a
:class:`~repro.errors.VerificationError` (1), and a report whose only
defects are typed simulation failures (deadlock, timeout, crash)
surfaces the first such failure's own exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import SimulationError, VerificationError, describe, exit_code_for

#: Schema version of the JSON artifact (bump on incompatible layout change).
ARTIFACT_SCHEMA = 1


@dataclass(frozen=True)
class Violation:
    """One verified-invariant defect.

    Attributes:
        scope: where it was found — a workload name for differential
            checks, ``"property:<name>"`` for fuzz-layer checks.
        check: invariant family, e.g. ``"functional-identity"``,
            ``"cycle-ordering"``, ``"unswizzle-inversion"``.
        message: human-readable specifics (values, masks, policies).
    """

    scope: str
    check: str
    message: str

    def as_dict(self) -> Dict[str, str]:
        return {"scope": self.scope, "check": self.check,
                "message": self.message}


@dataclass
class WorkloadVerdict:
    """Differential-verification outcome for one workload.

    ``error`` is set (instead of ``violations``) when the workload could
    not be cross-checked at all because one of its policy runs failed
    with a typed simulation error; ``error_exit`` preserves that
    failure's :mod:`repro.errors` exit code.
    """

    workload: str
    violations: List[Violation] = field(default_factory=list)
    error: Optional[str] = None
    error_exit: int = 0
    #: Per-policy headline metrics (policy value -> metric -> number),
    #: recorded even on failure so the artifact shows what diverged.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations and self.error is None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "workload": self.workload,
            "passed": self.passed,
            "violations": [v.as_dict() for v in self.violations],
            "metrics": self.metrics,
        }
        if self.error is not None:
            out["error"] = self.error
            out["error_exit_code"] = self.error_exit
        return out


@dataclass
class PropertyReport:
    """Fuzz/property-layer outcome for one invariant family."""

    name: str
    cases: int
    violations: List[Violation] = field(default_factory=list)
    seed: Optional[int] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cases": self.cases,
            "passed": self.passed,
            "violations": [v.as_dict() for v in self.violations],
        }
        if self.seed is not None:
            out["seed"] = self.seed
        return out


@dataclass
class VerifyReport:
    """Everything one ``repro verify`` invocation established."""

    workloads: List[WorkloadVerdict] = field(default_factory=list)
    properties: List[PropertyReport] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for verdict in self.workloads:
            out.extend(verdict.violations)
        for prop in self.properties:
            out.extend(prop.violations)
        return out

    @property
    def errors(self) -> List[WorkloadVerdict]:
        return [v for v in self.workloads if v.error is not None]

    @property
    def passed(self) -> bool:
        return (all(v.passed for v in self.workloads)
                and all(p.passed for p in self.properties))

    def exit_code(self) -> int:
        """CLI exit status under the :mod:`repro.errors` contract."""
        if self.passed:
            return 0
        if self.violations:
            return VerificationError.exit_code
        # Only typed simulation failures: surface the first one's code.
        return next(v.error_exit for v in self.errors)

    def as_artifact(self) -> Dict[str, Any]:
        """JSON-serializable artifact (the ``--json`` payload)."""
        return {
            "schema": ARTIFACT_SCHEMA,
            "passed": self.passed,
            "exit_code": self.exit_code(),
            "workloads": [v.as_dict() for v in self.workloads],
            "properties": [p.as_dict() for p in self.properties],
            "counts": {
                "workloads": len(self.workloads),
                "workloads_passed": sum(v.passed for v in self.workloads),
                "violations": len(self.violations),
                "errors": len(self.errors),
                "property_cases": sum(p.cases for p in self.properties),
            },
        }

    def summary_lines(self) -> List[str]:
        """Human-readable wrap-up for stderr."""
        passed = sum(v.passed for v in self.workloads)
        lines = [
            f"verify: {passed}/{len(self.workloads)} workload(s) passed, "
            f"{sum(p.cases for p in self.properties)} property case(s), "
            f"{len(self.violations)} violation(s), "
            f"{len(self.errors)} execution error(s)"
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION [{violation.scope}] "
                         f"{violation.check}: {violation.message}")
        for verdict in self.errors:
            lines.append(f"  ERROR [{verdict.workload}] {verdict.error}")
        return lines


def error_verdict(workload: str, error: BaseException) -> WorkloadVerdict:
    """Verdict for a workload whose policy runs could not complete."""
    exit_code = (exit_code_for(error)
                 if isinstance(error, SimulationError) else
                 SimulationError.exit_code)
    return WorkloadVerdict(workload=workload, error=describe(error),
                           error_exit=exit_code)
