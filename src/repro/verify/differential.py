"""Cross-policy differential verification of the simulator.

The paper's results pipeline rests on one invariant family: RAW, IVB,
BCC, and SCC are *timing* configurations of the same machine, so for any
workload they must be functionally identical (same output buffers, same
dynamic instruction stream, same SIMD efficiency) and timing-ordered
(compaction only removes cycles: ``SCC <= BCC <= IVB <= RAW``).  This
module executes every requested workload under all four policies through
the shared :class:`~repro.runner.Runner` (deduplicated, cached, fault
tolerant) and checks:

* **functional identity** — bit-identical output-buffer digests,
  identical dynamic instruction counts, identical SIMD efficiency;
* **stat identity** — the full :class:`~repro.core.stats.CompactionStats`
  fingerprint (lane-slot totals, per-policy analytic cycles, every
  utilization bucket, swizzle and RF-access counters) agrees across the
  four runs, for the ALU-only and the all-SIMD accumulators;
* **cycle ordering** — the timed ``total_cycles`` obey
  ``SCC <= BCC <= IVB <= RAW``, and within every run the analytic ALU
  cycle counts obey the same ordering in aggregate (the per-(mask,width)
  ordering is fuzzed exhaustively in :mod:`repro.verify.properties`);
* **plumbing consistency** — each result is labelled with the policy
  that produced it and its ``eu_cycles`` equals its own analytic count.

Two measured relaxations, both deliberate:

* The *analytic* per-instruction ordering is exact, but the *timed*
  end-to-end ordering is checked with a small relative tolerance
  (:data:`TIMED_ORDERING_TOLERANCE`): changing the EU's cycle usage
  shifts when memory requests are injected, and the perturbed
  workgroup/memory interleaving moves total cycles by a fraction of a
  percent in either direction — scheduling noise, not a modelling bug.
  A genuine ordering inversion is orders of magnitude larger.
* Workloads whose ``Workload.mask_deterministic`` is False (benign
  intra-launch races, e.g. level-synchronous BFS) keep the functional
  checks — identical buffers, instruction counts — but skip the mask
  statistics identity, which legitimately varies with interleaving.

A workload whose simulation fails outright (deadlock, timeout, crash,
host-reference mismatch) yields an error verdict carrying the typed
failure instead of a violation list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.policy import POLICY_ORDER, CompactionPolicy
from ..core.stats import CompactionStats
from ..gpu.config import GpuConfig
from ..gpu.results import KernelRunResult
from ..runner import Job, Runner, default_runner
from .report import Violation, WorkloadVerdict, error_verdict

#: Policies every workload is differentially executed under, in
#: non-increasing expected cycle order.
VERIFIED_POLICIES = POLICY_ORDER  # RAW, IVB, BCC, SCC

#: Relative slack allowed when comparing *timed* total cycles across
#: policies.  Empirically the interleaving noise is below 0.5 % on every
#: registry workload; real inversions (a policy that actually costs
#: cycles) are far larger.
TIMED_ORDERING_TOLERANCE = 0.01


def verifiable_workloads() -> List[str]:
    """Registry workloads eligible for verification (faults excluded)."""
    from ..kernels import FAULT_WORKLOADS, WORKLOAD_REGISTRY

    return [name for name in WORKLOAD_REGISTRY if name not in FAULT_WORKLOADS]


def _mask_deterministic(name: str) -> bool:
    """Whether *name*'s execution masks are interleaving-independent."""
    from ..kernels import WORKLOAD_REGISTRY

    factory = WORKLOAD_REGISTRY.get(name)
    if factory is None:
        return True
    return factory().mask_deterministic


def _stats_fingerprint(stats: CompactionStats) -> Dict[str, object]:
    """Policy-independent fingerprint of one stats accumulator.

    Everything here is a pure function of the executed ``(mask, width,
    dtype, operands)`` stream, so it must be identical no matter which
    policy timed the run.
    """
    return {
        "instructions": stats.instructions,
        "enabled_lane_slots": stats.enabled_lane_slots,
        "issued_lane_slots": stats.issued_lane_slots,
        "cycles": {policy.value: stats.cycles[policy]
                   for policy in POLICY_ORDER},
        "buckets": dict(sorted(stats.bucket_counts.items())),
        "scc_swizzles": stats.scc_swizzles,
        "rf_accesses_baseline": stats.rf_accesses_baseline,
        "rf_accesses_bcc": stats.rf_accesses_bcc,
    }


def _check_ordering(scope: str, check: str, label: str,
                    values: Dict[CompactionPolicy, int],
                    tolerance: float = 0.0) -> List[Violation]:
    """SCC <= BCC <= IVB <= RAW over *values* (one Violation per break).

    *tolerance* is the allowed relative excess of the nominally-faster
    policy over the slower one (0.0 = exact ordering).
    """
    violations = []
    for faster, slower in zip(reversed(POLICY_ORDER),
                              list(reversed(POLICY_ORDER))[1:]):
        # reversed order: SCC, BCC, IVB, RAW — each must be <= the next.
        if values[faster] > values[slower] * (1.0 + tolerance):
            slack = (f" beyond the {tolerance:.2%} interleaving tolerance"
                     if tolerance else "")
            violations.append(Violation(
                scope=scope, check=check,
                message=(f"{label}: {faster.value}={values[faster]} > "
                         f"{slower.value}={values[slower]}{slack} "
                         f"(expected {faster.value} <= {slower.value})")))
    return violations


def verify_workload_results(
    name: str,
    results: Dict[CompactionPolicy, KernelRunResult],
    mask_deterministic: bool = True,
    timed_tolerance: float = 0.0,
) -> List[Violation]:
    """Cross-check one workload's four policy runs; returns violations.

    *mask_deterministic* False drops the mask-statistics identity checks
    (see module docstring); *timed_tolerance* relaxes only the timed
    ``total_cycles`` ordering, never the analytic one.
    """
    violations: List[Violation] = []
    missing = [p.value for p in VERIFIED_POLICIES if p not in results]
    if missing:
        violations.append(Violation(
            scope=name, check="missing-run",
            message=f"no result for policy/policies: {', '.join(missing)}"))
        return violations

    reference_policy = VERIFIED_POLICIES[0]
    reference = results[reference_policy]

    for policy in VERIFIED_POLICIES:
        result = results[policy]

        # Plumbing: the result must be labelled with the policy that
        # produced it, and its timed EU-cycle count must agree with its
        # own analytic accumulator.
        if result.policy is not policy:
            violations.append(Violation(
                scope=name, check="policy-label",
                message=f"run under {policy.value} is labelled "
                        f"{result.policy.value}"))
        if result.eu_cycles != result.alu_stats.cycles[result.policy]:
            violations.append(Violation(
                scope=name, check="eu-cycles-consistency",
                message=f"{policy.value}: eu_cycles={result.eu_cycles} != "
                        f"alu_stats.cycles[{result.policy.value}]="
                        f"{result.alu_stats.cycles[result.policy]}"))

        # Functional identity against the reference run.
        if result.buffers_digest is None:
            violations.append(Violation(
                scope=name, check="functional-identity",
                message=f"{policy.value}: result carries no output-buffer "
                        f"digest (stale cache entry?)"))
        elif result.buffers_digest != reference.buffers_digest:
            violations.append(Violation(
                scope=name, check="functional-identity",
                message=f"output buffers differ: {policy.value} digest "
                        f"{result.buffers_digest[:16]}... != "
                        f"{reference_policy.value} digest "
                        f"{(reference.buffers_digest or 'none')[:16]}..."))
        if result.instructions != reference.instructions:
            violations.append(Violation(
                scope=name, check="instruction-count",
                message=f"{policy.value} executed {result.instructions} "
                        f"instructions, {reference_policy.value} executed "
                        f"{reference.instructions}"))
        if (mask_deterministic
                and result.simd_efficiency != reference.simd_efficiency):
            violations.append(Violation(
                scope=name, check="simd-efficiency",
                message=f"{policy.value} efficiency "
                        f"{result.simd_efficiency!r} != "
                        f"{reference_policy.value} efficiency "
                        f"{reference.simd_efficiency!r}"))

        # Stat identity: the full accumulator fingerprints must agree
        # (mask-deterministic workloads only — racy masks shift buckets).
        if mask_deterministic:
            for label, stats, ref_stats in (
                ("alu_stats", result.alu_stats, reference.alu_stats),
                ("simd_stats", result.simd_stats, reference.simd_stats),
            ):
                fp, ref_fp = (_stats_fingerprint(stats),
                              _stats_fingerprint(ref_stats))
                if fp != ref_fp:
                    diffs = [key for key in fp if fp[key] != ref_fp[key]]
                    violations.append(Violation(
                        scope=name, check="stats-identity",
                        message=f"{label} diverges between {policy.value} "
                                f"and {reference_policy.value} in: "
                                f"{', '.join(diffs)}"))

        # Analytic cycle ordering inside each run (aggregate; the fuzz
        # layer covers per-(mask,width) ordering exhaustively).
        for label, stats in (("alu_stats", result.alu_stats),
                             ("simd_stats", result.simd_stats)):
            violations.extend(_check_ordering(
                name, "analytic-cycle-ordering",
                f"{policy.value} {label} cycles", stats.cycles))

    # Timed cycle ordering across the four runs (interleaving tolerance).
    violations.extend(_check_ordering(
        name, "timed-cycle-ordering", "total_cycles",
        {policy: results[policy].total_cycles
         for policy in VERIFIED_POLICIES},
        tolerance=timed_tolerance))
    return violations


def _metrics(results: Dict[CompactionPolicy, KernelRunResult]) -> Dict[str, Dict[str, object]]:
    """Per-policy headline metrics for the artifact."""
    out: Dict[str, Dict[str, object]] = {}
    for policy, result in results.items():
        out[policy.value] = {
            "total_cycles": result.total_cycles,
            "eu_cycles": result.eu_cycles,
            "instructions": result.instructions,
            "simd_efficiency": round(result.simd_efficiency, 9),
            "buffers_digest": result.buffers_digest,
        }
    return out


def run_differential(
    names: Optional[Sequence[str]] = None,
    base_config: Optional[GpuConfig] = None,
    runner: Optional[Runner] = None,
    policies: Iterable[CompactionPolicy] = VERIFIED_POLICIES,
    timed_tolerance: float = TIMED_ORDERING_TOLERANCE,
) -> List[WorkloadVerdict]:
    """Differentially verify *names* (default: every non-fault workload).

    All ``len(names) * 4`` simulations go to the shared runner as one
    batch, so they are deduplicated against (and feed) the same on-disk
    result cache every experiment uses.
    """
    ordered = list(names) if names is not None else verifiable_workloads()
    base = base_config if base_config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()
    policies = list(policies)

    jobs: Dict[tuple, Job] = {
        (name, policy): Job(name, base.with_policy(policy))
        for name in ordered for policy in policies
    }
    results = engine.run(jobs.values(), strict=False)
    failures = engine.last_stats.failures

    verdicts: List[WorkloadVerdict] = []
    for name in ordered:
        per_policy: Dict[CompactionPolicy, KernelRunResult] = {}
        error: Optional[BaseException] = None
        for policy in policies:
            job = jobs[(name, policy)]
            if job in results:
                per_policy[policy] = results[job]
            elif error is None and job.key in failures:
                error = failures[job.key]
        if error is not None:
            verdict = error_verdict(name, error)
            verdict.metrics = _metrics(per_policy)
            verdicts.append(verdict)
            continue
        verdicts.append(WorkloadVerdict(
            workload=name,
            violations=verify_workload_results(
                name, per_policy,
                mask_deterministic=_mask_deterministic(name),
                timed_tolerance=timed_tolerance),
            metrics=_metrics(per_policy),
        ))
    return verdicts
