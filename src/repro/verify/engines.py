"""Cross-engine differential verification (interp vs fast).

The two-phase fast core (:mod:`repro.eu.batch` functional pass +
:mod:`repro.eu.replay` timing replay) is only trustworthy if it is
*behaviorally indistinguishable* from the interleaved interpreter.  This
module runs every requested workload under both engines — same policy,
same memory model — through the shared :class:`~repro.runner.Runner`
and checks:

* **functional identity** — bit-identical output-buffer digests and
  identical dynamic instruction counts, unconditionally;
* **stat identity** — the full :class:`~repro.core.stats.CompactionStats`
  fingerprints (lane slots, per-policy analytic cycles, utilization
  buckets, swizzle/RF counters) agree for the ALU-only and all-SIMD
  accumulators;
* **timing identity** — the replay engine shares the interpreter's
  arbitration, pipe, scoreboard, and memory-hierarchy code paths, so
  ``total_cycles`` must agree *exactly*.

Workloads whose ``Workload.mask_deterministic`` is False (benign
intra-launch races, e.g. level-synchronous BFS) keep the functional
identity checks but relax the mask statistics and exact cycle equality:
the fast engine's canonical lockstep interleaving can legitimately
resolve a benign race differently from the timed interleaving, shifting
masks and therefore cycles by a fraction of a percent.  Their timed
totals are still pinned within :data:`ENGINE_TIMING_TOLERANCE`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gpu.config import ENGINES, GpuConfig
from ..gpu.results import KernelRunResult
from ..runner import Job, Runner, default_runner
from .differential import _mask_deterministic, _stats_fingerprint
from .report import Violation, WorkloadVerdict, error_verdict

#: Suffix appended to a workload's name in engine-parity verdicts, so
#: they never collide with the cross-policy verdicts in one report.
PARITY_SUFFIX = "@engines"

#: Relative |fast - interp| slack on ``total_cycles`` for workloads with
#: mask-nondeterministic races; mask-deterministic workloads get 0.0
#: (exact equality).  Empirically the drift is < 0.1 % (BFS).
ENGINE_TIMING_TOLERANCE = 0.01

#: The reference engine and the engine under test.
REFERENCE_ENGINE, TESTED_ENGINE = ENGINES


def verify_engine_results(
    name: str,
    interp: KernelRunResult,
    fast: KernelRunResult,
    mask_deterministic: bool = True,
    timing_tolerance: float = ENGINE_TIMING_TOLERANCE,
) -> List[Violation]:
    """Cross-check one workload's interp and fast runs; returns violations."""
    scope = name + PARITY_SUFFIX
    violations: List[Violation] = []

    if interp.buffers_digest is None or fast.buffers_digest is None:
        violations.append(Violation(
            scope=scope, check="engine-functional-identity",
            message="a run carries no output-buffer digest "
                    "(stale cache entry?)"))
    elif interp.buffers_digest != fast.buffers_digest:
        violations.append(Violation(
            scope=scope, check="engine-functional-identity",
            message=f"output buffers differ: fast digest "
                    f"{fast.buffers_digest[:16]}... != interp digest "
                    f"{interp.buffers_digest[:16]}..."))
    if interp.instructions != fast.instructions:
        violations.append(Violation(
            scope=scope, check="engine-instruction-count",
            message=f"fast executed {fast.instructions} instructions, "
                    f"interp executed {interp.instructions}"))

    if mask_deterministic:
        if fast.total_cycles != interp.total_cycles:
            violations.append(Violation(
                scope=scope, check="engine-total-cycles",
                message=f"fast total_cycles={fast.total_cycles} != "
                        f"interp total_cycles={interp.total_cycles} "
                        f"(replay must be timing-identical)"))
        if fast.simd_efficiency != interp.simd_efficiency:
            violations.append(Violation(
                scope=scope, check="engine-simd-efficiency",
                message=f"fast efficiency {fast.simd_efficiency!r} != "
                        f"interp efficiency {interp.simd_efficiency!r}"))
        for label, fast_stats, interp_stats in (
            ("alu_stats", fast.alu_stats, interp.alu_stats),
            ("simd_stats", fast.simd_stats, interp.simd_stats),
        ):
            fp, ref_fp = (_stats_fingerprint(fast_stats),
                          _stats_fingerprint(interp_stats))
            if fp != ref_fp:
                diffs = [key for key in fp if fp[key] != ref_fp[key]]
                violations.append(Violation(
                    scope=scope, check="engine-stats-identity",
                    message=f"{label} diverges between engines in: "
                            f"{', '.join(diffs)}"))
    else:
        lo = interp.total_cycles * (1.0 - timing_tolerance)
        hi = interp.total_cycles * (1.0 + timing_tolerance)
        if not lo <= fast.total_cycles <= hi:
            violations.append(Violation(
                scope=scope, check="engine-total-cycles",
                message=f"fast total_cycles={fast.total_cycles} outside "
                        f"{timing_tolerance:.2%} of interp "
                        f"total_cycles={interp.total_cycles} "
                        f"(mask-nondeterministic workload)"))
    return violations


def _metrics(results: Dict[str, KernelRunResult]) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for engine_name, result in results.items():
        out[engine_name] = {
            "total_cycles": result.total_cycles,
            "instructions": result.instructions,
            "simd_efficiency": round(result.simd_efficiency, 9),
            "buffers_digest": result.buffers_digest,
        }
    return out


def run_engine_parity(
    names: Optional[Sequence[str]] = None,
    base_config: Optional[GpuConfig] = None,
    runner: Optional[Runner] = None,
    timing_tolerance: float = ENGINE_TIMING_TOLERANCE,
) -> List[WorkloadVerdict]:
    """Differentially verify interp vs fast on *names*.

    Defaults to every non-fault registry workload.  The 2×len(names)
    simulations go through the shared runner, so they are deduplicated
    against (and feed) the same on-disk result cache everything else
    uses — including the cross-policy harness, which shares the interp
    runs when the base configs agree.
    """
    from .differential import verifiable_workloads

    ordered = list(names) if names is not None else verifiable_workloads()
    base = base_config if base_config is not None else GpuConfig()
    engine = runner if runner is not None else default_runner()

    jobs: Dict[tuple, Job] = {
        (name, eng): Job(name, base.with_engine(eng))
        for name in ordered for eng in (REFERENCE_ENGINE, TESTED_ENGINE)
    }
    results = engine.run(jobs.values(), strict=False)
    failures = engine.last_stats.failures

    verdicts: List[WorkloadVerdict] = []
    for name in ordered:
        per_engine: Dict[str, KernelRunResult] = {}
        error = None
        for eng in (REFERENCE_ENGINE, TESTED_ENGINE):
            job = jobs[(name, eng)]
            if job in results:
                per_engine[eng] = results[job]
            elif error is None and job.key in failures:
                error = failures[job.key]
        if error is not None or len(per_engine) < 2:
            verdict = error_verdict(
                name + PARITY_SUFFIX,
                error if error is not None else RuntimeError(
                    f"missing engine run(s) for {name!r}"))
            verdict.metrics = _metrics(per_engine)
            verdicts.append(verdict)
            continue
        verdicts.append(WorkloadVerdict(
            workload=name + PARITY_SUFFIX,
            violations=verify_engine_results(
                name, per_engine[REFERENCE_ENGINE],
                per_engine[TESTED_ENGINE],
                mask_deterministic=_mask_deterministic(name),
                timing_tolerance=timing_tolerance),
            metrics=_metrics(per_engine),
        ))
    return verdicts
