"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate simulator workloads and synthetic traces;
* ``run WORKLOAD`` — simulate one workload and print its metrics;
* ``profile NAME_OR_FILE`` — profile a built-in or on-disk mask trace;
* ``mask HEX`` — analyse one execution mask: cycles under every policy,
  the BCC micro-op schedule, and the SCC swizzle schedule;
* ``experiment NAME`` — regenerate one paper table/figure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.report import format_table
from .core.bcc import bcc_schedule
from .core.policy import CompactionPolicy, cycles_all_policies, parse_policy
from .core.quads import format_mask
from .core.scc import scc_schedule
from .gpu.config import GpuConfig
from .kernels import WORKLOAD_REGISTRY, run_workload
from .trace.format import read_trace
from .trace.profiler import profile_trace
from .trace.workloads import TRACE_PROFILES, trace_events


def _cmd_list(_args) -> int:
    rows = []
    for name, factory in sorted(WORKLOAD_REGISTRY.items()):
        workload = factory()
        rows.append([name, "simulator", workload.category,
                     workload.description])
    for name, profile in sorted(TRACE_PROFILES.items()):
        rows.append([name, "trace", "divergent",
                     f"synthetic trace, {profile.num_instructions} instructions"])
    print(format_table(["name", "source", "class", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    if args.workload not in WORKLOAD_REGISTRY:
        print(f"unknown workload {args.workload!r}; try `list`", file=sys.stderr)
        return 2
    config = GpuConfig(policy=parse_policy(args.policy))
    if args.dc2:
        config = config.with_memory(dc_lines_per_cycle=2.0)
    if args.perfect_l3:
        config = config.with_memory(perfect_l3=True)
    result = run_workload(WORKLOAD_REGISTRY[args.workload](), config,
                          verify=not args.no_verify)
    rows = [[key, value] for key, value in sorted(result.summary().items())]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} under {config.policy.value}"))
    for policy in (CompactionPolicy.BCC, CompactionPolicy.SCC):
        print(f"{policy.value.upper()} EU-cycle reduction vs IVB: "
              f"{result.eu_cycle_reduction_pct(policy):.1f}%")
    return 0


def _cmd_profile(args) -> int:
    if args.trace in TRACE_PROFILES:
        events = trace_events(args.trace)
        name = args.trace
    elif Path(args.trace).exists():
        events = read_trace(args.trace)
        name = Path(args.trace).name
    else:
        print(f"no built-in trace or file named {args.trace!r}", file=sys.stderr)
        return 2
    if args.widen > 1:
        from .trace.transform import widen_trace

        events = widen_trace(events, args.widen)
        name = f"{name} (widened x{args.widen})"
    profile = profile_trace(name, events)
    rows = [[key, value] for key, value in sorted(profile.summary().items())]
    print(format_table(["metric", "value"], rows, title=f"trace {name}"))
    return 0


def _cmd_mask(args) -> int:
    mask = int(args.mask, 16)
    width = args.width
    print(f"mask {format_mask(mask, width)}  (SIMD{width})")
    cycles = cycles_all_policies(mask, width, min_cycles=1)
    print(format_table(
        ["policy", "execution cycles"],
        [[policy.value, count] for policy, count in cycles.items()],
    ))
    schedule = bcc_schedule(mask, width)
    issued = ", ".join(f"Q{op.quad}(en={op.lane_enable:04b})"
                       for op in schedule.ops) or "(nothing)"
    print(f"BCC micro-ops: {issued}; suppressed quads: "
          f"{list(schedule.suppressed)}")
    scc = scc_schedule(mask, width)
    for index, cycle in enumerate(scc.cycles):
        slots = ", ".join(
            f"out{slot.out_lane}<-Q{slot.quad}.L{slot.src_lane}"
            + ("*" if slot.swizzled else "")
            for slot in cycle)
        print(f"SCC cycle {index}: {slots}")
    print(f"SCC: {scc.cycle_count} cycles, {scc.swizzle_count} swizzles"
          + (" (BCC-only path)" if scc.bcc_only else ""))
    return 0


def _cmd_experiment(args) -> int:
    from . import experiments

    name = args.name
    if name == "table2":
        print(experiments.table2.render(
            experiments.table2.table2_analytic(), "Table 2 (analytic)"))
    elif name == "fig08":
        print(experiments.fig08.render(
            experiments.fig08.fig8_analytic(), "Figure 8 (analytic)"))
    elif name == "area":
        print(experiments.area.render(experiments.area.area_data()))
    elif name == "fig03":
        print(experiments.fig03.render(experiments.fig03.fig3_data()))
    elif name == "fig09":
        print(experiments.fig09.render(experiments.fig09.fig9_data()))
    elif name == "fig10":
        print(experiments.fig10.render(experiments.fig10.fig10_data()))
    elif name == "fig11":
        print(experiments.fig11.render(experiments.fig11.fig11_data()))
    elif name == "fig12":
        print(experiments.fig12.render(experiments.fig12.fig12_data()))
    elif name == "table4":
        print(experiments.table4.render(experiments.table4.table4_data()))
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIMD intra-warp compaction reproduction (ISCA 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and traces")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload")
    run.add_argument("--policy", default="ivb",
                     help="raw | ivb | bcc | scc (default ivb)")
    run.add_argument("--dc2", action="store_true",
                     help="double data-cluster bandwidth (Figure 11 DC2)")
    run.add_argument("--perfect-l3", action="store_true",
                     help="infinite L3 (Figure 12 PL3)")
    run.add_argument("--no-verify", action="store_true",
                     help="skip the host reference check")

    profile = sub.add_parser("profile", help="profile an execution-mask trace")
    profile.add_argument("trace", help="built-in trace name or file path")
    profile.add_argument("--widen", type=int, default=1,
                         help="fuse N warps into wider ones before "
                              "profiling (models a wider machine)")

    mask = sub.add_parser("mask", help="analyse one execution mask")
    mask.add_argument("mask", help="hex mask, e.g. F0F0")
    mask.add_argument("--width", type=int, default=16)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "name",
        help="fig03|fig08|fig09|fig10|fig11|fig12|table2|table4|area")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "mask": _cmd_mask,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
