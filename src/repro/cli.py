"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate simulator workloads and synthetic traces;
* ``kernels`` — list every kernel with its frontend (hand-assembled or
  Python DSL) and instruction count, or inspect one kernel — including
  generated ``stress_*`` names — down to its lowered assembly;
* ``run WORKLOAD`` — simulate one workload and print its metrics;
* ``profile NAME_OR_FILE`` — profile a built-in or on-disk mask trace;
* ``mask HEX`` — analyse one execution mask: cycles under every policy,
  the BCC micro-op schedule, and the SCC swizzle schedule;
* ``experiment NAME`` — regenerate one paper table/figure (``--jobs N``
  parallelizes, ``--no-cache`` bypasses the shared result cache);
* ``sweep`` — run an arbitrary workload x policy x memory grid through
  the shared runner and emit one table/JSON artifact.  ``--resume``
  continues an interrupted sweep from its checkpoint journal.
* ``verify`` — cross-policy differential verification: run workloads
  under all four compaction policies, assert functional identity and
  cycle ordering, fuzz the analytic core, and emit a violation report.
* ``serve`` — long-lived simulation daemon: an HTTP/JSON job service on
  top of the shared runner (submit/status/result/trace/cancel), with
  in-flight dedup, a durable job journal, and graceful SIGTERM drain.
* ``client`` — talk to a running ``serve`` daemon: submit jobs, watch
  them, fetch results/traces/metrics.  Transient failures (connection
  reset, 429, 503) retry transparently with jittered backoff.
* ``worker`` — join a ``serve`` daemon's fleet: long-poll for queued
  jobs, execute them under a heartbeat-renewed lease, and publish
  typed results back.  Run any number, on any number of hosts.

Failures are typed (:mod:`repro.errors`) and map to stable exit codes:
0 success, 1 verification mismatch, 2 usage error, 3 simulated deadlock,
4 wall-clock timeout, 5 worker crash, 6 cache corruption, 7 service
error, 9 kernel build error, 130 interrupt.  Every failure prints a one-line diagnosis on
stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .analysis.report import format_table
from .core.bcc import bcc_schedule
from .core.policy import CompactionPolicy, cycles_all_policies, parse_policy
from .core.quads import format_mask
from .core.scc import scc_schedule
from .errors import SimulationError, describe, exit_code_for
from .gpu.config import GpuConfig
from .kernels import (
    DIVERGENT_WORKLOADS,
    DSL_WORKLOADS,
    FAULT_WORKLOADS,
    RODINIA_WORKLOADS,
    WORKLOAD_REGISTRY,
    run_workload,
)
from .trace.format import read_trace
from .trace.profiler import profile_trace
from .trace.workloads import TRACE_PROFILES, trace_events


def _runner_from_args(args, progress=False):
    """Build a shared-engine Runner from the common CLI flags."""
    from .runner import JobEvent, Runner

    def _report(event: JobEvent) -> None:
        note = f" [{describe(event.error)}]" if event.error is not None else ""
        print(f"[{event.index}/{event.total}] {event.job.workload} "
              f"{event.status} ({event.elapsed:.2f}s){note}", file=sys.stderr)

    cache = False if getattr(args, "no_cache", False) else (
        getattr(args, "cache_dir", None) or "default")
    return Runner(workers=getattr(args, "jobs", 1) or 1,
                  cache=cache,
                  verify=not getattr(args, "no_verify", False),
                  progress=_report if progress else None,
                  timeout=getattr(args, "timeout", None),
                  retries=getattr(args, "retries", 2))


def _add_runner_flags(parser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulations (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-sim)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-job wall-clock budget in seconds; hung "
                             "jobs die with a timeout error (default: none)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries for transient worker failures "
                             "(default 2); deterministic failures — "
                             "deadlock, verification, timeout — never retry")


def _cmd_list(_args) -> int:
    rows = []
    for name, factory in sorted(WORKLOAD_REGISTRY.items()):
        workload = factory()
        rows.append([name, "simulator", workload.category,
                     workload.description])
    for name, profile in sorted(TRACE_PROFILES.items()):
        rows.append([name, "trace", "divergent",
                     f"synthetic trace, {profile.num_instructions} instructions"])
    print(format_table(["name", "source", "class", "description"], rows))
    return 0


def _kernel_frontend(name: str, factory) -> str:
    """'dsl' for Python-authored kernels, 'asm' for hand-built programs."""
    from .dsl.stress import parse_stress_name

    if getattr(factory, "is_dsl", False) or parse_stress_name(name):
        return "dsl"
    return "asm"


def _cmd_kernels(args) -> int:
    from .isa.asm import program_to_text

    if args.name:
        factory = WORKLOAD_REGISTRY.get(args.name)
        if factory is None:
            print(f"unknown kernel {args.name!r}; `kernels` lists them "
                  f"(generated stress_sS_dD_eE_tT_mM names also resolve)",
                  file=sys.stderr)
            return 2
        workload = factory()
        program = workload.program
        info: Dict[str, Any] = {
            "name": workload.name,
            "frontend": _kernel_frontend(args.name, factory),
            "class": workload.category,
            "simd_width": program.simd_width,
            "instructions": len(program.instructions),
            "registers": program.num_regs,
            "params": [{"name": p.name, "kind": p.kind.name.lower()}
                       for p in program.params],
            "buffers": {bname: {"dtype": str(data.dtype),
                                "size": int(data.size)}
                        for bname, data in sorted(workload.buffers.items())},
            "launches": (len(workload.steps)
                         if isinstance(workload.steps, list) else "host-loop"),
            "description": workload.description,
        }
        if args.asm or args.json:
            info["asm"] = program_to_text(program)
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        for key in ("name", "frontend", "class", "simd_width", "instructions",
                    "registers", "launches", "description"):
            print(f"{key:14} {info[key]}")
        print(f"{'params':14} " + ", ".join(
            f"{p['name']} ({p['kind']})" for p in info["params"]))
        for bname, spec in info["buffers"].items():
            print(f"{'buffer':14} {bname}: {spec['dtype']}[{spec['size']}]")
        if args.asm:
            print()
            print(info["asm"])
        return 0

    rows = []
    records = []
    for name, factory in sorted(WORKLOAD_REGISTRY.items()):
        workload = factory()
        frontend = _kernel_frontend(name, factory)
        count = len(workload.program.instructions)
        rows.append([name, frontend, workload.category,
                     workload.program.simd_width, count,
                     workload.description])
        records.append({"name": name, "frontend": frontend,
                        "class": workload.category,
                        "simd_width": workload.program.simd_width,
                        "instructions": count})
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["name", "frontend", "class", "simd", "insts", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    if args.workload not in WORKLOAD_REGISTRY:
        print(f"unknown workload {args.workload!r}; try `list`", file=sys.stderr)
        return 2
    config = GpuConfig(policy=parse_policy(args.policy), engine=args.engine)
    if args.max_cycles:
        config = dataclasses.replace(config, max_cycles=args.max_cycles)
    if args.dc2:
        config = config.with_memory(dc_lines_per_cycle=2.0)
    if args.perfect_l3:
        config = config.with_memory(perfect_l3=True)
    telemetry_level = args.telemetry
    if args.trace_out and telemetry_level == "off":
        telemetry_level = "trace"  # a trace file needs events collected
    if telemetry_level != "off":
        config = config.with_telemetry(telemetry_level)
    profiler = None
    if args.profile or args.profile_out:
        from .telemetry import HostProfiler

        profiler = HostProfiler()
    try:
        if profiler is not None:
            profiler.start()
        try:
            result = run_workload(WORKLOAD_REGISTRY[args.workload](), config,
                                  verify=not args.no_verify,
                                  host_seconds=args.timeout,
                                  hostprof=profiler)
        finally:
            if profiler is not None:
                profiler.stop()
    except AssertionError as exc:
        # VerificationError and plain reference-check AssertionErrors:
        # keep the verbose, actionable message (exit code 1 either way).
        detail = f": {exc}" if str(exc) else ""
        print(f"verification FAILED for workload {args.workload!r}{detail}\n"
              f"(simulated output does not match the host reference; "
              f"use --no-verify to inspect timing anyway)", file=sys.stderr)
        return 1
    if args.json:
        # The same typed payload the serve daemon stores for a job, so
        # daemon-vs-foreground bit-identity is `diff` on two files.
        from .serve.jobs import JobSpec, result_payload

        spec = JobSpec(workload=args.workload, policy=args.policy,
                       engine=args.engine, telemetry=telemetry_level,
                       dc_lines_per_cycle=2.0 if args.dc2 else 1.0,
                       perfect_l3=args.perfect_l3,
                       max_cycles=args.max_cycles,
                       verify=not args.no_verify)
        text = json.dumps(result_payload(spec, result), indent=2,
                          sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
    if args.json != "-":
        summary = result.summary(telemetry=telemetry_level != "off")
        rows = [[key, value] for key, value in sorted(summary.items())]
        print(format_table(["metric", "value"], rows,
                           title=f"{args.workload} under {config.policy.value}"))
        for policy in (CompactionPolicy.BCC, CompactionPolicy.SCC):
            print(f"{policy.value.upper()} EU-cycle reduction vs IVB: "
                  f"{result.eu_cycle_reduction_pct(policy):.1f}%")
    if args.trace_out:
        from .telemetry import export_chrome_trace

        count = export_chrome_trace(result.telemetry, args.trace_out,
                                    kernel=args.workload,
                                    policy=config.policy.value)
        print(f"wrote {count} trace event(s) to {args.trace_out} "
              f"(load in Perfetto / chrome://tracing)", file=sys.stderr)
    if profiler is not None:
        _print_profile(profiler, args, result)
    return 0


def _print_profile(profiler, args, result) -> None:
    """Render the host profile; optionally write a BENCH_*.json record."""
    report = profiler.report()
    rows = [[name, entry["samples"], f"{entry['share']:.1%}",
             f"{entry['est_seconds']:.3f}s"]
            for name, entry in report["subsystems"].items()]
    throughput = result.total_cycles / (report["host_seconds"] or 1e-12)
    print(format_table(["subsystem", "samples", "share", "est time"], rows,
                       title=f"host profile ({report['host_seconds']:.2f}s, "
                             f"{report['samples']} samples, "
                             f"{throughput:,.0f} cycles/s)"))
    opcode_rows = [[name, entry["calls"], f"{entry['seconds']:.4f}s"]
                   for name, entry in list(report["opcodes"].items())[:10]]
    if opcode_rows:
        print(format_table(["opcode", "issues", "host time"], opcode_rows,
                           title="host time by opcode (top 10)"))
    if args.profile_out:
        from .telemetry.hostprof import write_bench_json

        seconds = report["host_seconds"] or 1e-12
        report["workload"] = args.workload
        report["policy"] = args.policy
        report["total_cycles"] = result.total_cycles
        report["instructions"] = result.instructions
        report["cycles_per_second"] = result.total_cycles / seconds
        report["instructions_per_second"] = result.instructions / seconds
        path = write_bench_json(args.profile_out, [report],
                                label=f"run:{args.workload}")
        print(f"wrote host profile to {path}", file=sys.stderr)


def _cmd_profile(args) -> int:
    if args.trace in TRACE_PROFILES:
        events = trace_events(args.trace)
        name = args.trace
    elif Path(args.trace).exists():
        events = read_trace(args.trace)
        name = Path(args.trace).name
    else:
        print(f"no built-in trace or file named {args.trace!r}", file=sys.stderr)
        return 2
    if args.widen > 1:
        from .trace.transform import widen_trace

        events = widen_trace(events, args.widen)
        name = f"{name} (widened x{args.widen})"
    profile = profile_trace(name, events)
    rows = [[key, value] for key, value in sorted(profile.summary().items())]
    print(format_table(["metric", "value"], rows, title=f"trace {name}"))
    return 0


def _cmd_mask(args) -> int:
    mask = int(args.mask, 16)
    width = args.width
    print(f"mask {format_mask(mask, width)}  (SIMD{width})")
    cycles = cycles_all_policies(mask, width, min_cycles=1)
    print(format_table(
        ["policy", "execution cycles"],
        [[policy.value, count] for policy, count in cycles.items()],
    ))
    schedule = bcc_schedule(mask, width)
    issued = ", ".join(f"Q{op.quad}(en={op.lane_enable:04b})"
                       for op in schedule.ops) or "(nothing)"
    print(f"BCC micro-ops: {issued}; suppressed quads: "
          f"{list(schedule.suppressed)}")
    scc = scc_schedule(mask, width)
    for index, cycle in enumerate(scc.cycles):
        slots = ", ".join(
            f"out{slot.out_lane}<-Q{slot.quad}.L{slot.src_lane}"
            + ("*" if slot.swizzled else "")
            for slot in cycle)
        print(f"SCC cycle {index}: {slots}")
    print(f"SCC: {scc.cycle_count} cycles, {scc.swizzle_count} swizzles"
          + (" (BCC-only path)" if scc.bcc_only else ""))
    return 0


def _cmd_experiment(args) -> int:
    from . import experiments

    name = args.name
    runner = _runner_from_args(args)
    if name == "table2":
        print(experiments.table2.render(
            experiments.table2.table2_analytic(), "Table 2 (analytic)"))
    elif name == "fig08":
        print(experiments.fig08.render(
            experiments.fig08.fig8_analytic(), "Figure 8 (analytic)"))
    elif name == "area":
        print(experiments.area.render(experiments.area.area_data()))
    elif name == "fig03":
        print(experiments.fig03.render(
            experiments.fig03.fig3_data(runner=runner)))
    elif name == "fig09":
        print(experiments.fig09.render(
            experiments.fig09.fig9_data(runner=runner)))
    elif name == "fig10":
        print(experiments.fig10.render(
            experiments.fig10.fig10_data(runner=runner)))
    elif name == "fig11":
        print(experiments.fig11.render(
            experiments.fig11.fig11_data(runner=runner)))
    elif name == "fig12":
        print(experiments.fig12.render(
            experiments.fig12.fig12_data(runner=runner)))
    elif name == "table4":
        print(experiments.table4.render(
            experiments.table4.table4_data(runner=runner)))
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    stats = runner.last_stats
    if stats.unique:
        print(f"runner: {stats.unique} unique simulation(s), "
              f"{stats.cache_hits} cached, {stats.executed} executed "
              f"in {stats.wall_seconds:.2f}s", file=sys.stderr)
    return 0


#: Named workload groups accepted by ``sweep --workloads``.  The fault
#: injection entries are registry members but never part of a group —
#: they must be named explicitly to run.
WORKLOAD_GROUPS = {
    "all": lambda: tuple(n for n in WORKLOAD_REGISTRY
                         if n not in FAULT_WORKLOADS),
    "divergent": lambda: DIVERGENT_WORKLOADS,
    "rodinia": lambda: RODINIA_WORKLOADS,
    "dsl": lambda: DSL_WORKLOADS,
}


def _with_stress(names: List[str], args) -> List[str]:
    """Append `--stress N` generated scenario names to a workload list."""
    count = getattr(args, "stress", 0) or 0
    if count:
        from .dsl.stress import stress_batch

        names = names + stress_batch(count, seed=args.stress_seed)
    return list(dict.fromkeys(names))


def _add_stress_flags(parser) -> None:
    parser.add_argument("--stress", type=int, default=0, metavar="N",
                        help="also include N generated divergence-stress "
                             "kernels (repro.dsl.stress); with no "
                             "--workloads, run only the stress batch")
    parser.add_argument("--stress-seed", type=int, default=0, metavar="S",
                        help="base seed for the --stress batch (default 0)")


def _sweep_workloads(spec: str) -> List[str]:
    names: List[str] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in WORKLOAD_GROUPS:
            names.extend(WORKLOAD_GROUPS[token]())
        else:
            names.append(token)
    return list(dict.fromkeys(names))


def _sweep_record(point, result) -> Dict[str, Any]:
    """One deterministic result row of the sweep artifact."""
    name, policy, dc, pl3 = point
    return {
        "workload": name,
        "policy": policy.value,
        "dc_lines_per_cycle": dc,
        "perfect_l3": pl3,
        "total_cycles": result.total_cycles,
        "eu_cycles": result.eu_cycles,
        "instructions": result.instructions,
        "simd_efficiency": round(result.simd_efficiency, 6),
        "l3_hit_rate": round(result.l3_hit_rate, 6),
        "memory_divergence": round(result.memory_divergence, 6),
        "bcc_eu_reduction_pct": round(
            result.eu_cycle_reduction_pct(CompactionPolicy.BCC), 3),
        "scc_eu_reduction_pct": round(
            result.eu_cycle_reduction_pct(CompactionPolicy.SCC), 3),
    }


def _cmd_sweep(args) -> int:
    from .runner import CheckpointJournal, Job, stable_digest

    spec = args.workloads
    if spec is None:
        spec = "" if args.stress else "divergent"
    names = _with_stress(_sweep_workloads(spec), args)
    unknown = [n for n in names if n not in WORKLOAD_REGISTRY]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}; try `list`",
              file=sys.stderr)
        return 2
    if not names:
        print("nothing to sweep: empty workload list", file=sys.stderr)
        return 2
    try:
        policies = [parse_policy(p) for p in args.policies.split(",") if p]
        dc_values = [float(v) for v in args.dc.split(",") if v]
    except ValueError as exc:
        print(f"bad sweep grid: {exc}", file=sys.stderr)
        return 2
    pl3_values = {"off": (False,), "on": (True,),
                  "both": (False, True)}[args.perfect_l3]
    if args.resume and (not args.json or args.json == "-"):
        print("--resume needs --json PATH (the journal lives beside the "
              "artifact)", file=sys.stderr)
        return 2
    telemetry_level = args.telemetry
    if args.trace_dir and telemetry_level == "off":
        telemetry_level = "trace"  # per-job traces need events collected

    jobs: Dict[Any, Job] = {}
    for name in names:
        for policy in policies:
            for dc in dc_values:
                for pl3 in pl3_values:
                    config = GpuConfig(policy=policy, engine=args.engine)
                    if args.max_cycles:
                        config = dataclasses.replace(
                            config, max_cycles=args.max_cycles)
                    config = config.with_memory(
                        dc_lines_per_cycle=dc, perfect_l3=pl3)
                    if telemetry_level != "off":
                        config = config.with_telemetry(telemetry_level)
                    jobs[(name, policy, dc, pl3)] = Job(name, config)
    grid = {
        "workloads": names,
        "policies": [p.value for p in policies],
        "dc_lines_per_cycle": dc_values,
        "perfect_l3": sorted(pl3_values),
        "engine": args.engine,
    }
    grid_key = stable_digest({**grid, "verify": not args.no_verify,
                              "max_cycles": args.max_cycles or 0,
                              "telemetry": telemetry_level})

    # Checkpoint journal: written beside the JSON artifact whenever one
    # is requested, consumed by --resume, deleted on success.  Only
    # successful jobs are journaled — failures rerun on resume.
    journal = None
    resumed: Dict[str, Any] = {}
    if args.json and args.json != "-":
        journal = CheckpointJournal(Path(args.json + ".journal"), grid_key)
        if args.resume:
            loaded = journal.load()
            if loaded is None:
                print("sweep: no matching journal to resume; starting fresh",
                      file=sys.stderr)
                # A stale file (e.g. a different grid's journal) must be
                # discarded, or append() would keep extending it under
                # the old header and the next --resume would ignore
                # every checkpoint written this run.
                journal.discard()
            else:
                resumed = loaded
                print(f"sweep: resuming, {len(resumed)}/{len(jobs)} job(s) "
                      f"already journaled", file=sys.stderr)
        else:
            journal.discard()  # a stale journal must not leak into this run

    by_key = {job.key: point for point, job in jobs.items()}
    pending = {point: job for point, job in jobs.items()
               if job.key not in resumed}
    interrupt_after = int(os.environ.get("REPRO_FAULT_INTERRUPT_AFTER", 0)
                          or 0)
    completed_this_run = 0

    runner = _runner_from_args(args, progress=args.progress)
    outer_progress = runner.progress

    def _journaling_progress(event) -> None:
        nonlocal completed_this_run
        if outer_progress is not None:
            outer_progress(event)
        if event.status in ("cached", "executed"):
            completed_this_run += 1
            if journal is not None and event.result is not None:
                point = by_key[event.job.key]
                journal.append(event.job.key,
                               {"record": _sweep_record(point, event.result)})
            if interrupt_after and completed_this_run >= interrupt_after:
                # Deterministic interruption point for the fault-injection
                # CI job: stand-in for a Ctrl-C / SIGINT mid-sweep.
                raise KeyboardInterrupt
    runner.progress = _journaling_progress

    try:
        results = runner.run(pending.values(), strict=False)
    except KeyboardInterrupt:
        done = len(resumed) + completed_this_run
        print(f"\nsweep interrupted: {done}/{len(jobs)} job(s) completed"
              + (f"; resume with --resume --json {args.json}"
                 if journal is not None else ""), file=sys.stderr)
        return 130
    stats = runner.last_stats

    records: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    exit_code = 0
    for point, job in jobs.items():  # grid order: deterministic artifact
        if job.key in resumed:
            records.append(resumed[job.key]["record"])
        elif job in results:
            records.append(_sweep_record(point, results[job]))
        elif job.key in stats.failures:
            error = stats.failures[job.key]
            name, policy, dc, pl3 = point
            failures.append({
                "workload": name,
                "policy": policy.value,
                "dc_lines_per_cycle": dc,
                "perfect_l3": pl3,
                "error": describe(error),
                "exit_code": exit_code_for(error),
            })
            if exit_code == 0:
                exit_code = exit_code_for(error)

    if args.trace_dir:
        from .telemetry import export_chrome_trace

        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        exported = skipped = 0
        for point, job in jobs.items():
            result = results.get(job)
            if result is None or result.telemetry is None:
                skipped += 1  # failed, or resumed from a journal record
                continue
            name, policy, dc, pl3 = point
            stem = f"{name}_{policy.value}_dc{dc:g}" + ("_pl3" if pl3 else "")
            export_chrome_trace(result.telemetry, trace_dir / f"{stem}.json",
                                kernel=name, policy=policy.value)
            exported += 1
        note = f"; {skipped} without telemetry skipped" if skipped else ""
        print(f"sweep: wrote {exported} Chrome trace(s) to {trace_dir}{note}",
              file=sys.stderr)

    artifact = {"grid": grid, "results": records, "failures": failures}
    if args.json:
        text = json.dumps(artifact, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
    if args.json != "-":
        rows = [[r["workload"], r["policy"], f"{r['dc_lines_per_cycle']:g}",
                 "yes" if r["perfect_l3"] else "no", r["total_cycles"],
                 r["eu_cycles"], f"{r['simd_efficiency']:.3f}",
                 f"{r['scc_eu_reduction_pct']:.1f}%"]
                for r in records]
        print(format_table(
            ["workload", "policy", "DC", "PL3", "total cycles", "EU cycles",
             "SIMD eff", "SCC EU reduction"],
            rows, title="sweep results"))
    summary = (f"sweep: {len(jobs)} job(s), {stats.unique} unique, "
               f"{stats.cache_hits} cached, {stats.executed} executed in "
               f"{stats.wall_seconds:.2f}s with {runner.workers} worker(s)")
    if stats.executed:
        summary += (f"; {stats.host_seconds:.2f}s simulating at "
                    f"{stats.cycles_per_second:,.0f} cycles/s, "
                    f"{stats.queue_seconds:.2f}s queued")
    if resumed:
        summary += f"; {len(resumed)} resumed from journal"
    if failures:
        summary += f"; {len(failures)} FAILED"
    print(summary, file=sys.stderr)
    for failure in failures:
        print(f"  FAILED {failure['workload']}/{failure['policy']}: "
              f"{failure['error']}", file=sys.stderr)
    if journal is not None and not failures:
        journal.discard()  # sweep complete: the artifact is the record
    return exit_code


def _cmd_verify(args) -> int:
    from .verify import run_verify

    spec = "all" if args.all else args.workloads
    if spec is None:
        spec = "" if args.stress else "all"
    names = _with_stress(_sweep_workloads(spec), args)
    unknown = [n for n in names if n not in WORKLOAD_REGISTRY]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}; try `list`",
              file=sys.stderr)
        return 2
    faulty = [n for n in names if n in FAULT_WORKLOADS]
    if faulty:
        print(f"fault-injection workload(s) cannot be verified: "
              f"{', '.join(faulty)}", file=sys.stderr)
        return 2
    if not names:
        print("nothing to verify: empty workload list", file=sys.stderr)
        return 2
    if args.fuzz < 0:
        print(f"--fuzz must be >= 0, got {args.fuzz}", file=sys.stderr)
        return 2

    runner = _runner_from_args(args, progress=args.progress)
    base_config = GpuConfig(engine=args.engine)
    report = run_verify(names, base_config=base_config, runner=runner,
                        fuzz_iterations=args.fuzz,
                        seed=args.seed, timed_tolerance=args.timed_tolerance,
                        engine_parity=not args.no_engine_parity)

    if args.json:
        text = json.dumps(report.as_artifact(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
    if args.json != "-":
        from .verify.engines import PARITY_SUFFIX

        rows = []
        parity_rows = []
        for verdict in report.workloads:
            status = ("ok" if verdict.passed else
                      "ERROR" if verdict.error is not None else
                      f"FAIL({len(verdict.violations)})")
            if verdict.workload.endswith(PARITY_SUFFIX):
                cycles = {eng: verdict.metrics.get(eng, {}).get(
                    "total_cycles", "-") for eng in ("interp", "fast")}
                parity_rows.append(
                    [verdict.workload[:-len(PARITY_SUFFIX)],
                     cycles["interp"], cycles["fast"], status])
                continue
            cycles = {policy: verdict.metrics.get(policy, {}).get(
                "total_cycles", "-") for policy in ("raw", "ivb", "bcc", "scc")}
            rows.append([verdict.workload, cycles["raw"], cycles["ivb"],
                         cycles["bcc"], cycles["scc"], status])
        print(format_table(
            ["workload", "raw", "ivb", "bcc", "scc", "status"],
            rows, title="cross-policy differential verification"))
        if parity_rows:
            print(format_table(
                ["workload", "interp", "fast", "status"], parity_rows,
                title="engine parity (interp vs fast total cycles)"))
        prop_rows = [[prop.name, prop.cases,
                      "ok" if prop.passed else f"FAIL({len(prop.violations)})"]
                     for prop in report.properties]
        if prop_rows:
            print(format_table(["property", "cases", "status"], prop_rows,
                               title="property/fuzz checks"))
    for line in report.summary_lines():
        print(line, file=sys.stderr)
    return report.exit_code()


def _cmd_serve(args) -> int:
    import asyncio

    from .serve.http import serve_forever
    from .serve.service import JobService

    data_dir = Path(args.data_dir).expanduser()
    runner = _runner_from_args(args)
    service = JobService(
        data_dir,
        runner=runner,
        queue_limit=args.queue_limit,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        batch_max=args.batch_max,
        lease_ttl=args.lease_ttl,
        max_assignments=args.max_assignments,
        local_exec=not args.no_local_exec,
    )
    recovered = int(service.counters.get("serve.jobs.recovered"))
    if recovered:
        print(f"serve: recovered {recovered} unresolved job(s) from the "
              f"journal", file=sys.stderr)

    def _ready(bound) -> None:
        host, port = bound[0], bound[1]
        print(f"serve: listening on http://{host}:{port} "
              f"(data dir {data_dir}, {runner.workers} worker(s), "
              f"queue limit {args.queue_limit})", file=sys.stderr, flush=True)

    code = asyncio.run(serve_forever(service, args.host, args.port,
                                     ready=_ready))
    pending = len(service.list_jobs(state="queued"))
    note = f"; {pending} queued job(s) journaled for restart" if pending else ""
    print(f"serve: drained cleanly{note}", file=sys.stderr)
    return code


def _client_spec(args) -> Dict[str, Any]:
    """Assemble the POST /jobs payload from ``client submit`` flags."""
    params: Dict[str, Any] = {}
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --param {item!r}; expected KEY=VALUE")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    spec: Dict[str, Any] = {
        "workload": args.workload,
        "policy": args.policy,
        "engine": args.engine,
        "telemetry": args.telemetry,
        "verify": not args.no_verify,
    }
    if args.dc2:
        spec["dc_lines_per_cycle"] = 2.0
    if args.perfect_l3:
        spec["perfect_l3"] = True
    if args.max_cycles:
        spec["max_cycles"] = args.max_cycles
    if params:
        spec["params"] = params
    return spec


def _cmd_client(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(host=args.host, port=args.port,
                         client_id=args.client_id,
                         max_retries=0 if args.no_retry else args.max_retries)

    def emit(body: Any, path: Optional[str] = None) -> None:
        text = json.dumps(body, indent=2, sort_keys=True)
        if path:
            Path(path).write_text(text + "\n")
            print(f"wrote {path}", file=sys.stderr)
        else:
            print(text)

    action = args.action
    if action == "submit":
        status = client.submit(_client_spec(args))
        if args.watch:
            status = client.watch(status["id"], timeout=args.watch_timeout)
            if status["state"] == "done":
                emit(client.result(status["id"]), args.out)
            else:
                emit(status)
            return 0 if status["state"] == "done" else (
                status.get("exit_code") or 7)
        emit(status)
    elif action == "status":
        emit(client.status(args.job_id))
    elif action == "watch":
        status = client.watch(args.job_id, timeout=args.watch_timeout)
        emit(status)
        return 0 if status["state"] == "done" else (
            status.get("exit_code") or 7)
    elif action == "result":
        body = client.result(args.job_id)
        emit(body, args.out)
        if body.get("state") == "failed":
            return body.get("exit_code") or 7
    elif action == "trace":
        emit(client.trace(args.job_id), args.out)
    elif action == "cancel":
        emit(client.cancel(args.job_id))
    elif action == "jobs":
        emit(client.jobs(state=args.state, workload=args.workload,
                         limit=args.limit))
    elif action == "metrics":
        emit(client.metrics())
    elif action == "health":
        emit(client.health())
    return 0


def _cmd_worker(args) -> int:
    from .serve.client import ServeClient
    from .serve.worker import ServeWorker

    client = ServeClient(host=args.host, port=args.port,
                         timeout=max(args.poll_wait + 30.0, 60.0),
                         max_retries=0 if args.no_retry else args.max_retries)
    worker = ServeWorker(
        client,
        name=args.name,
        max_jobs=args.max_jobs,
        poll_wait=args.poll_wait,
        heartbeat_interval=args.heartbeat_interval,
        exit_on_drain=args.exit_on_drain,
        idle_exit=args.idle_exit,
        startup_timeout=args.startup_timeout,
        fetch_cache=not args.no_cache_fetch,
    )
    worker.install_signal_handlers()
    return worker.run()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIMD intra-warp compaction reproduction (ISCA 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and traces")

    kernels = sub.add_parser(
        "kernels",
        help="list every kernel with its frontend (asm or Python DSL), or "
             "inspect one kernel down to its lowered assembly")
    kernels.add_argument("name", nargs="?", default=None,
                         help="kernel to inspect (registry names and "
                              "generated stress_* names both resolve); "
                              "omit for the full listing")
    kernels.add_argument("--asm", action="store_true",
                         help="with NAME: also print the kernel's assembly "
                              "(the round-trippable repro.isa.asm text)")
    kernels.add_argument("--json", action="store_true",
                         help="emit JSON to stdout instead of the table")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload")
    run.add_argument("--policy", default="ivb",
                     help="raw | ivb | bcc | scc (default ivb)")
    run.add_argument("--engine", choices=("interp", "fast"), default="interp",
                     help="execution core: 'interp' interleaves functional "
                          "execution with the cycle loop; 'fast' runs a "
                          "batched functional pass first and replays its "
                          "trace through the same timing model (default "
                          "interp)")
    run.add_argument("--dc2", action="store_true",
                     help="double data-cluster bandwidth (Figure 11 DC2)")
    run.add_argument("--perfect-l3", action="store_true",
                     help="infinite L3 (Figure 12 PL3)")
    run.add_argument("--no-verify", action="store_true",
                     help="skip the host reference check")
    run.add_argument("--timeout", type=float, default=None, metavar="SEC",
                     help="wall-clock budget; a hung simulation dies with "
                          "a timeout error instead of spinning forever")
    run.add_argument("--max-cycles", type=int, default=None, metavar="N",
                     help="override the simulator cycle budget (deadlock "
                          "watchdog; default 20M)")
    run.add_argument("--telemetry", choices=("off", "counters", "trace"),
                     default="off",
                     help="telemetry level: 'counters' adds telemetry.* "
                          "rows to the metrics table, 'trace' also records "
                          "per-cycle events (default off)")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write a Chrome-trace JSON of the run to PATH "
                          "(implies --telemetry trace; open in Perfetto)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="write the typed result payload (digest, counts, "
                          "stats fingerprints — the same document `repro "
                          "serve` stores per job) to PATH, '-' for stdout")
    run.add_argument("--profile", action="store_true",
                     help="profile the simulator itself: host time by "
                          "subsystem and by opcode")
    run.add_argument("--profile-out", metavar="PATH", default=None,
                     help="also write the host profile as a BENCH_*.json "
                          "record (implies --profile)")

    profile = sub.add_parser("profile", help="profile an execution-mask trace")
    profile.add_argument("trace", help="built-in trace name or file path")
    profile.add_argument("--widen", type=int, default=1,
                         help="fuse N warps into wider ones before "
                              "profiling (models a wider machine)")

    mask = sub.add_parser("mask", help="analyse one execution mask")
    mask.add_argument("mask", help="hex mask, e.g. F0F0")
    mask.add_argument("--width", type=int, default=16)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "name",
        help="fig03|fig08|fig09|fig10|fig11|fig12|table2|table4|area")
    _add_runner_flags(experiment)

    sweep = sub.add_parser(
        "sweep",
        help="run a workload x policy x memory grid through the shared runner")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated workload names and/or groups "
                            "(all, divergent, rodinia, dsl); generated "
                            "stress_* names resolve too; default: divergent")
    _add_stress_flags(sweep)
    sweep.add_argument("--engine", choices=("interp", "fast"),
                       default="interp",
                       help="execution core for every grid point (see "
                            "`run --engine`; cache keys include it)")
    sweep.add_argument("--policies", default="ivb,bcc,scc",
                       help="comma-separated policies (default ivb,bcc,scc)")
    sweep.add_argument("--dc", default="1.0",
                       help="comma-separated data-cluster lines/cycle "
                            "values (default 1.0; Figure 11 DC2 is 2.0)")
    sweep.add_argument("--perfect-l3", choices=("off", "on", "both"),
                       default="off",
                       help="include the infinite-L3 memory model in the grid")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write the JSON artifact to PATH ('-' for stdout "
                            "instead of the table)")
    sweep.add_argument("--no-verify", action="store_true",
                       help="skip host reference checks")
    sweep.add_argument("--progress", action="store_true",
                       help="report per-job progress on stderr")
    sweep.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep from the "
                            "checkpoint journal next to --json PATH")
    sweep.add_argument("--max-cycles", type=int, default=None, metavar="N",
                       help="override the simulator cycle budget for every "
                            "job in the grid")
    sweep.add_argument("--telemetry", choices=("off", "counters", "trace"),
                       default="off",
                       help="telemetry level for every job in the grid; the "
                            "level is part of each job's cache key")
    sweep.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="write one Chrome-trace JSON per grid point to "
                            "DIR (implies --telemetry trace)")
    _add_runner_flags(sweep)

    verify = sub.add_parser(
        "verify",
        help="differentially verify every compaction policy against the "
             "others and fuzz the analytic core")
    verify.add_argument("--workloads", default=None,
                        help="comma-separated workload names and/or groups "
                             "(all, divergent, rodinia, dsl); generated "
                             "stress_* names resolve too; default: all")
    _add_stress_flags(verify)
    verify.add_argument("--all", action="store_true",
                        help="verify every non-fault registry workload "
                             "(same as --workloads all)")
    verify.add_argument("--fuzz", type=int, default=500, metavar="N",
                        help="random cases per property family (default "
                             "500; 0 disables the fuzz layer)")
    verify.add_argument("--seed", type=int, default=0,
                        help="fuzzer seed, recorded in the artifact for "
                             "reproduction (default 0)")
    verify.add_argument("--json", metavar="PATH", default=None,
                        help="write the violation-report artifact to PATH "
                             "('-' for stdout instead of the tables)")
    verify.add_argument("--timed-tolerance", type=float, default=0.01,
                        metavar="FRAC",
                        help="relative slack for the timed total-cycle "
                             "ordering check (default 0.01; analytic EU-"
                             "cycle ordering is always exact)")
    verify.add_argument("--engine", choices=("interp", "fast"),
                        default="interp",
                        help="execution core the cross-policy runs use "
                             "(default interp)")
    verify.add_argument("--no-engine-parity", action="store_true",
                        help="skip the interp-vs-fast engine-parity layer "
                             "(on by default: each workload runs under "
                             "both engines and must agree bit-for-bit)")
    verify.add_argument("--progress", action="store_true",
                        help="report per-job progress on stderr")
    _add_runner_flags(verify)

    serve = sub.add_parser(
        "serve",
        help="run the simulation daemon: an HTTP/JSON job service on top "
             "of the shared runner")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (default 8642; 0 picks a free port)")
    serve.add_argument("--data-dir",
                       default=os.environ.get("REPRO_SERVE_DIR",
                                              "~/.cache/repro-sim/serve"),
                       help="daemon state directory: job journal + exported "
                            "traces (default $REPRO_SERVE_DIR or "
                            "~/.cache/repro-sim/serve)")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="max queued jobs before submissions get 503 "
                            "(default 64)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="PER_SEC",
                       help="per-client submission rate limit; exceeding "
                            "clients get 429 (default: unlimited)")
    serve.add_argument("--rate-burst", type=int, default=None, metavar="N",
                       help="token-bucket burst depth for --rate-limit")
    serve.add_argument("--batch-max", type=int, default=32, metavar="N",
                       help="max queued jobs dispatched to the runner as "
                            "one batch (default 32)")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip host reference checks for served jobs")
    serve.add_argument("--lease-ttl", type=float, default=30.0, metavar="SEC",
                       help="worker lease time-to-live; a job whose worker "
                            "misses this many seconds of heartbeats is "
                            "reassigned (default 30)")
    serve.add_argument("--max-assignments", type=int, default=3, metavar="N",
                       help="times a job may be handed out (lease grants + "
                            "local pickups) before it fails as a worker "
                            "crash (default 3)")
    serve.add_argument("--no-local-exec", action="store_true",
                       help="never execute jobs in-process; act purely as "
                            "the fleet coordinator for `repro worker` "
                            "processes")
    _add_runner_flags(serve)

    client = sub.add_parser(
        "client", help="talk to a running `repro serve` daemon")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8642)
    client.add_argument("--client-id", default="",
                        help="client identity sent as X-Repro-Client "
                             "(rate limits apply per identity)")
    client.add_argument("--max-retries", type=int, default=3, metavar="N",
                        help="transparent retries for transient failures — "
                             "connection reset, 429, 503 (default 3)")
    client.add_argument("--no-retry", action="store_true",
                        help="fail fast on transient errors (same as "
                             "--max-retries 0)")
    csub = client.add_subparsers(dest="action", required=True)

    submit = csub.add_parser("submit", help="submit one job")
    submit.add_argument("workload")
    submit.add_argument("--policy", default="ivb")
    submit.add_argument("--engine", choices=("interp", "fast"),
                        default="interp")
    submit.add_argument("--telemetry", choices=("off", "counters", "trace"),
                        default="off")
    submit.add_argument("--dc2", action="store_true",
                        help="double data-cluster bandwidth")
    submit.add_argument("--perfect-l3", action="store_true")
    submit.add_argument("--max-cycles", type=int, default=None, metavar="N")
    submit.add_argument("--no-verify", action="store_true")
    submit.add_argument("--param", action="append", metavar="KEY=VALUE",
                        help="workload factory parameter (JSON value or "
                             "bare string; repeatable)")
    submit.add_argument("--watch", action="store_true",
                        help="block until the job finishes and print its "
                             "result")
    submit.add_argument("--watch-timeout", type=float, default=300.0,
                        metavar="SEC")
    submit.add_argument("--out", metavar="PATH", default=None,
                        help="with --watch: write the result JSON to PATH")

    status = csub.add_parser("status", help="one job's status")
    status.add_argument("job_id")

    watch = csub.add_parser("watch", help="poll a job to completion")
    watch.add_argument("job_id")
    watch.add_argument("--watch-timeout", type=float, default=300.0,
                       metavar="SEC")

    result = csub.add_parser("result", help="fetch a finished job's result")
    result.add_argument("job_id")
    result.add_argument("--out", metavar="PATH", default=None)

    trace = csub.add_parser("trace", help="fetch a job's Chrome trace")
    trace.add_argument("job_id")
    trace.add_argument("--out", metavar="PATH", default=None)

    cancel = csub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job_id")

    jobs = csub.add_parser("jobs", help="list the daemon's jobs")
    jobs.add_argument("--state", default=None,
                      help="queued|running|done|failed|cancelled")
    jobs.add_argument("--workload", default=None)
    jobs.add_argument("--limit", type=int, default=None)

    csub.add_parser("metrics", help="service counters and gauges")
    csub.add_parser("health", help="daemon liveness")

    worker = sub.add_parser(
        "worker",
        help="join a `repro serve` daemon's fleet: lease queued jobs, "
             "execute them under heartbeat, publish typed results")
    worker.add_argument("--host", default="127.0.0.1",
                        help="daemon address (default 127.0.0.1)")
    worker.add_argument("--port", type=int, default=8642)
    worker.add_argument("--name", default=None, metavar="NAME",
                        help="fleet-unique worker identity (default "
                             "<hostname>-<pid>)")
    worker.add_argument("--max-jobs", type=int, default=0, metavar="N",
                        help="exit after executing N jobs (default: work "
                             "forever)")
    worker.add_argument("--poll-wait", type=float, default=5.0, metavar="SEC",
                        help="long-poll duration per lease request "
                             "(default 5)")
    worker.add_argument("--heartbeat-interval", type=float, default=None,
                        metavar="SEC",
                        help="lease renewal period (default: a third of the "
                             "TTL the daemon grants)")
    worker.add_argument("--exit-on-drain", action="store_true",
                        help="exit 0 when the daemon reports it is draining")
    worker.add_argument("--idle-exit", type=float, default=None, metavar="SEC",
                        help="exit 0 after SEC seconds without work")
    worker.add_argument("--startup-timeout", type=float, default=60.0,
                        metavar="SEC",
                        help="exit 7 if the daemon is never reachable for "
                             "SEC seconds (default 60)")
    worker.add_argument("--max-retries", type=int, default=3, metavar="N",
                        help="transparent retries for transient failures "
                             "(default 3)")
    worker.add_argument("--no-retry", action="store_true",
                        help="fail fast on transient errors")
    worker.add_argument("--no-cache-fetch", action="store_true",
                        help="always simulate: skip the pre-execution "
                             "probe of the daemon's fleet-shared result "
                             "cache (publishing back still happens)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "kernels": _cmd_kernels,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "mask": _cmd_mask,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "worker": _cmd_worker,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    except SimulationError as exc:
        # Typed failures (deadlock, timeout, worker crash, cache
        # corruption, verification) exit with their own code and a
        # one-line diagnosis — never a traceback.
        print(describe(exc), file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
