"""Host-side profiler: where does the *simulator* spend wall time?

The ROADMAP's "fast as the hardware allows" goal needs measurements of
the simulator itself, not the simulated machine.  :class:`HostProfiler`
combines two cheap views:

* a **sampling thread** that captures the profiled thread's Python stack
  every ``interval`` seconds (via ``sys._current_frames``) and
  attributes each sample to a simulator subsystem (``eu``, ``memory``,
  ``gpu``, ``core``, ``isa``, ...) by the innermost ``repro`` frame's
  package, plus the concrete ``module:function`` hotspot;
* **per-opcode timers** fed by the EU's issue loop (only when a profiler
  is attached — the unprofiled path keeps its single ``None`` guard), so
  "which instruction class burns host time" is exact, not sampled.

:func:`profile_run` wraps one workload run; the module is also runnable
(``python -m repro.telemetry.hostprof``) as the harness that writes the
``benchmarks/results/BENCH_*.json`` performance baselines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Schema tag of the BENCH_*.json files this module writes.
BENCH_SCHEMA = 1

_REPRO_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def _subsystem_of(filename: str) -> Optional[str]:
    """Map a frame's file to its repro subpackage (None for foreign code)."""
    try:
        relative = Path(filename).resolve().relative_to(_REPRO_ROOT)
    except ValueError:
        return None
    parts = relative.parts
    return parts[0] if len(parts) > 1 else "repro"


class HostProfiler:
    """Samples one thread's stack and accumulates per-opcode host time."""

    def __init__(self, interval: float = 0.001) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.samples = 0
        self.subsystem_samples: Counter = Counter()
        self.hotspot_samples: Counter = Counter()
        self.opcode_seconds: Dict[str, float] = {}
        self.opcode_calls: Dict[str, int] = {}
        self.host_seconds = 0.0
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HostProfiler":
        """Begin sampling the calling thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(target=self._sample_loop,
                                        name="repro-hostprof", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.host_seconds += time.perf_counter() - self._started_at
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "HostProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            self.samples += 1
            subsystem = "other"
            walker = frame
            while walker is not None:
                found = _subsystem_of(walker.f_code.co_filename)
                if found is not None:
                    subsystem = found
                    hotspot = (f"{Path(walker.f_code.co_filename).stem}:"
                               f"{walker.f_code.co_name}")
                    self.hotspot_samples[hotspot] += 1
                    break
                walker = walker.f_back
            self.subsystem_samples[subsystem] += 1

    # -- exact per-opcode accounting (fed by the EU issue loop) ------------

    def add_opcode(self, opcode: str, seconds: float) -> None:
        self.opcode_seconds[opcode] = (
            self.opcode_seconds.get(opcode, 0.0) + seconds)
        self.opcode_calls[opcode] = self.opcode_calls.get(opcode, 0) + 1

    # -- reporting ---------------------------------------------------------

    def report(self, top: int = 15) -> Dict[str, Any]:
        """Structured profile: subsystem shares, hotspots, opcode times."""
        total = self.samples or 1
        subsystems = {
            name: {
                "samples": count,
                "share": count / total,
                "est_seconds": self.host_seconds * count / total,
            }
            for name, count in self.subsystem_samples.most_common()
        }
        hotspots = [
            {"site": site, "samples": count, "share": count / total}
            for site, count in self.hotspot_samples.most_common(top)
        ]
        opcodes = {
            name: {"seconds": self.opcode_seconds[name],
                   "calls": self.opcode_calls[name]}
            for name in sorted(self.opcode_seconds,
                               key=self.opcode_seconds.get, reverse=True)
        }
        return {
            "host_seconds": self.host_seconds,
            "sample_interval": self.interval,
            "samples": self.samples,
            "subsystems": subsystems,
            "hotspots": hotspots,
            "opcodes": opcodes,
        }


def profile_run(workload_name: str, config=None,
                interval: float = 0.001, verify: bool = True):
    """Run one registry workload under the profiler.

    Returns ``(KernelRunResult, profile_report_dict)``; the report gains
    per-run throughput (``total_cycles``, ``cycles_per_second``) so a
    single call yields a complete BENCH record.
    """
    from ..gpu.config import GpuConfig
    from ..kernels import WORKLOAD_REGISTRY
    from ..kernels.workload import run_workload

    config = config if config is not None else GpuConfig()
    profiler = HostProfiler(interval=interval)
    with profiler:
        result = run_workload(WORKLOAD_REGISTRY[workload_name](), config,
                              verify=verify, hostprof=profiler)
    report = profiler.report()
    seconds = report["host_seconds"] or 1e-12
    report["workload"] = workload_name
    report["policy"] = config.policy.value
    report["total_cycles"] = result.total_cycles
    report["instructions"] = result.instructions
    report["cycles_per_second"] = result.total_cycles / seconds
    report["instructions_per_second"] = result.instructions / seconds
    return result, report


def write_bench_json(destination, reports: List[Dict[str, Any]],
                     label: str = "baseline") -> Path:
    """Write a BENCH_*.json baseline from per-workload profile reports."""
    merged_subsystems: Counter = Counter()
    merged_opcodes: Dict[str, Dict[str, float]] = {}
    for report in reports:
        for name, entry in report["subsystems"].items():
            merged_subsystems[name] += entry["samples"]
        for name, entry in report["opcodes"].items():
            slot = merged_opcodes.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += entry["seconds"]
            slot["calls"] += entry["calls"]
    total_samples = sum(merged_subsystems.values()) or 1
    payload = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "generated_by": "repro.telemetry.hostprof",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": {
            report["workload"]: {
                "policy": report["policy"],
                "host_seconds": round(report["host_seconds"], 6),
                "total_cycles": report["total_cycles"],
                "instructions": report["instructions"],
                "cycles_per_second": round(report["cycles_per_second"], 1),
                "instructions_per_second": round(
                    report["instructions_per_second"], 1),
            }
            for report in reports
        },
        "subsystems": {
            name: {"samples": count, "share": round(count / total_samples, 4)}
            for name, count in merged_subsystems.most_common()
        },
        "opcodes": {
            name: {"seconds": round(entry["seconds"], 6),
                   "calls": int(entry["calls"])}
            for name, entry in sorted(merged_opcodes.items(),
                                      key=lambda kv: -kv[1]["seconds"])
        },
    }
    path = Path(destination)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


#: Default workload set for the committed baseline: one coherent kernel,
#: one branchy divergent kernel, one memory-divergent Rodinia kernel.
BASELINE_WORKLOADS = ("va", "nested_l2", "bfs")


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.hostprof``: write a BENCH baseline."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.hostprof",
        description="Profile the simulator and write a BENCH_*.json baseline")
    parser.add_argument("--out", default="benchmarks/results/BENCH_baseline.json",
                        help="output path (default "
                             "benchmarks/results/BENCH_baseline.json)")
    parser.add_argument("--workloads", default=",".join(BASELINE_WORKLOADS),
                        help="comma-separated registry workloads "
                             f"(default {','.join(BASELINE_WORKLOADS)})")
    parser.add_argument("--policy", default="scc",
                        help="compaction policy to profile under (default scc)")
    parser.add_argument("--interval", type=float, default=0.001,
                        help="stack-sampling interval in seconds")
    parser.add_argument("--label", default="baseline")
    args = parser.parse_args(argv)

    from ..core.policy import parse_policy
    from ..gpu.config import GpuConfig

    config = GpuConfig(policy=parse_policy(args.policy))
    reports = []
    for name in (n.strip() for n in args.workloads.split(",") if n.strip()):
        _, report = profile_run(name, config, interval=args.interval)
        reports.append(report)
        print(f"{name}: {report['host_seconds']:.2f}s host, "
              f"{report['cycles_per_second']:,.0f} cycles/s, "
              f"{report['samples']} samples", file=sys.stderr)
    path = write_bench_json(args.out, reports, label=args.label)
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
