"""Chrome Trace Event Format (Perfetto-loadable) export.

Renders a :class:`~repro.telemetry.events.TelemetryResult` as the JSON
object format of the Trace Event spec: ``{"traceEvents": [...]}`` with
``X`` (complete), ``i`` (instant), ``C`` (counter), and ``M`` (metadata)
records.  Tracks map onto the viewer's process/thread hierarchy:

* each EU becomes a *process* (``pid`` = EU id + 1) whose *threads* are
  its pipes (``fpu``, ``em``, ``send``), its compaction decisions
  (``quads``), its front end, and its mask-occupancy counter;
* run-level tracks (dispatch, the shared memory hierarchy) live in
  ``pid`` 0, named "GPU".

Timestamps are simulator cycles emitted as the spec's microseconds —
only relative placement matters, and Perfetto's timeline then reads
directly in cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .events import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TelemetryResult

#: ``ph`` values this exporter emits (plus "M" metadata).
_EXPORTED_PHASES = (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER)


def _split_track(track: str) -> Tuple[str, str]:
    """``"eu3/fpu"`` -> (``"eu3"``, ``"fpu"``); bare tracks go to the GPU."""
    if "/" in track:
        process, lane = track.split("/", 1)
        return process, lane
    return "gpu", track


def _process_ids(tracks) -> Dict[str, int]:
    """Stable pid assignment: GPU is 0, EUs follow their EU id."""
    pids: Dict[str, int] = {"gpu": 0}
    for process in sorted({_split_track(t)[0] for t in tracks}):
        if process.startswith("eu") and process[2:].isdigit():
            pids[process] = int(process[2:]) + 1
    next_pid = max(pids.values(), default=0) + 1
    for process in sorted({_split_track(t)[0] for t in tracks}):
        if process not in pids:
            pids[process] = next_pid
            next_pid += 1
    return pids


def chrome_trace_dict(telemetry: TelemetryResult, *,
                      kernel: str = "", policy: str = "") -> Dict[str, object]:
    """Build the Trace Event Format object for *telemetry*."""
    tracks = sorted({event.track for event in telemetry.events})
    pids = _process_ids(tracks)
    tids: Dict[str, int] = {}
    records: List[Dict[str, object]] = []

    for process, pid in sorted(pids.items(), key=lambda item: item[1]):
        label = "GPU" if process == "gpu" else process.upper()
        records.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": label}})
    for track in tracks:
        process, lane = _split_track(track)
        lanes = [t for t in tracks if _split_track(t)[0] == process]
        tids[track] = lanes.index(track)
        records.append({"name": "thread_name", "ph": "M",
                        "pid": pids[process], "tid": tids[track],
                        "args": {"name": lane}})

    for event in telemetry.events:
        process, _ = _split_track(event.track)
        record: Dict[str, object] = {
            "name": event.name,
            "cat": "sim",
            "ph": event.ph,
            "ts": event.ts,
            "pid": pids[process],
            "tid": tids[event.track],
        }
        if event.ph == PHASE_SPAN:
            record["dur"] = event.dur
        if event.ph == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = dict(event.args)
        records.append(record)

    meta: Dict[str, object] = {
        "telemetry_level": telemetry.level,
        "total_cycles": telemetry.total_cycles,
    }
    if kernel:
        meta["kernel"] = kernel
    if policy:
        meta["policy"] = policy
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def export_chrome_trace(telemetry: Optional[TelemetryResult],
                        destination: Union[str, Path], *,
                        kernel: str = "", policy: str = "") -> int:
    """Write the Chrome-trace JSON; returns the number of trace events.

    Raises ``ValueError`` when the run carried no telemetry (level
    ``"off"``) — the caller forgot to enable tracing in the config.
    """
    if telemetry is None:
        raise ValueError(
            "run carried no telemetry; set GpuConfig.telemetry='trace' "
            "(CLI: --trace-out implies it)")
    payload = chrome_trace_dict(telemetry, kernel=kernel, policy=policy)
    path = Path(destination)
    path.write_text(json.dumps(payload, separators=(",", ":"),
                               sort_keys=True) + "\n", encoding="utf-8")
    return sum(1 for r in payload["traceEvents"] if r["ph"] != "M")


def validate_chrome_trace(trace: Union[Dict[str, object], str, Path]) -> int:
    """Check *trace* against the Trace Event Format contract.

    Verifies the required keys per record (``name``/``ph``/``ts``/
    ``pid``/``tid``, plus ``dur`` for complete events) and that ``ts`` is
    monotonically non-decreasing within every ``(pid, tid)`` track.
    Returns the number of non-metadata events; raises ``ValueError`` on
    the first violation.  Used by the test suite and the CI smoke job.
    """
    if isinstance(trace, (str, Path)):
        trace = json.loads(Path(trace).read_text(encoding="utf-8"))
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a JSON object with 'traceEvents'")
    last_ts: Dict[Tuple[int, int], float] = {}
    counted = 0
    for index, record in enumerate(trace["traceEvents"]):
        for key in ("name", "ph"):
            if key not in record:
                raise ValueError(f"event {index} missing required key {key!r}")
        ph = record["ph"]
        if ph == "M":
            continue
        if ph not in _EXPORTED_PHASES:
            raise ValueError(f"event {index} has unexpected phase {ph!r}")
        for key in ("ts", "pid", "tid"):
            if key not in record:
                raise ValueError(f"event {index} missing required key {key!r}")
        if ph == PHASE_SPAN and "dur" not in record:
            raise ValueError(f"complete event {index} missing 'dur'")
        track = (record["pid"], record["tid"])
        ts = record["ts"]
        if ts < last_ts.get(track, float("-inf")):
            raise ValueError(
                f"event {index} breaks ts monotonicity on track {track}: "
                f"{ts} < {last_ts[track]}")
        last_ts[track] = ts
        counted += 1
    return counted
