"""Engine speedup benchmark: interp vs fast wall clock per workload.

``python -m repro.telemetry.corebench`` times each requested registry
workload under both execution engines — the interleaved interpreter and
the two-phase functional+replay fast core — and writes
``benchmarks/results/BENCH_core_speedup.json``.

Two speedup figures are recorded per workload, with different
semantics:

* ``speedup_vs_interp`` — fast vs interp *at the same commit*, both
  measured in this invocation.  This is the honest marginal value of
  flipping ``--engine fast`` today; it understates the two-phase
  redesign because the shared infrastructure work that shipped with it
  (event-floor caching, dispatch and memory-path streamlining) sped the
  interpreter up as well.
* ``speedup_vs_baseline`` — fast vs the committed hostprof baseline's
  ``host_seconds`` for the same workload
  (``benchmarks/results/BENCH_baseline.json``, recorded on the
  pre-redesign core under the same policy).  This is the end-to-end
  wall-clock win a user upgrading from the baseline commit observes.

Timing methodology: ``time.process_time()`` (CPU time — robust against
machine load), best of ``--repeats`` runs, a fresh workload instance
per run (outputs are written in place; BFS mutates its frontier), host
reference checks off so only simulation is on the clock.  Functional
equality between the engines is still asserted on every run via the
output-buffer digests.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Schema version of the BENCH_core_speedup.json artifact.
CORE_BENCH_SCHEMA = 1

#: Default workload set: the hostprof baseline trio (coherent, branchy
#: divergent, memory-divergent), so ``speedup_vs_baseline`` is defined
#: for every default row.
DEFAULT_WORKLOADS = ("va", "nested_l2", "bfs")

DEFAULT_BASELINE = "benchmarks/results/BENCH_baseline.json"
DEFAULT_OUT = "benchmarks/results/BENCH_core_speedup.json"


def time_workload(name: str, config, repeats: int = 3):
    """Best-of-*repeats* process time for one workload under *config*.

    Returns ``(best_seconds, last_result)``; every repeat runs a fresh
    workload instance so mutated buffers never leak across runs.
    """
    from ..kernels import WORKLOAD_REGISTRY
    from ..kernels.workload import run_workload

    factory = WORKLOAD_REGISTRY[name]
    best = math.inf
    result = None
    for _ in range(max(1, repeats)):
        workload = factory()
        start = time.process_time()
        result = run_workload(workload, config, verify=False)
        best = min(best, time.process_time() - start)
    return best, result


def collect(
    names: Sequence[str] = DEFAULT_WORKLOADS,
    policy: str = "scc",
    repeats: int = 3,
    baseline_path: Optional[str] = DEFAULT_BASELINE,
) -> Dict[str, Any]:
    """Measure *names* under both engines; return the artifact payload.

    Raises :class:`AssertionError` if any workload's output digests
    diverge between the engines — a speedup number for a wrong answer
    is worthless.
    """
    from ..core.policy import parse_policy
    from ..gpu.config import GpuConfig

    base_config = GpuConfig(policy=parse_policy(policy))
    baseline_workloads: Dict[str, Any] = {}
    if baseline_path and Path(baseline_path).is_file():
        baseline_workloads = json.loads(
            Path(baseline_path).read_text()).get("workloads", {})

    rows: Dict[str, Dict[str, Any]] = {}
    for name in names:
        interp_s, interp_r = time_workload(
            name, base_config.with_engine("interp"), repeats)
        fast_s, fast_r = time_workload(
            name, base_config.with_engine("fast"), repeats)
        assert fast_r.buffers_digest == interp_r.buffers_digest, (
            f"{name}: engines disagree functionally "
            f"({fast_r.buffers_digest} != {interp_r.buffers_digest})")
        row: Dict[str, Any] = {
            "interp_seconds": round(interp_s, 6),
            "fast_seconds": round(fast_s, 6),
            "speedup_vs_interp": round(interp_s / max(fast_s, 1e-12), 3),
            "total_cycles_interp": interp_r.total_cycles,
            "total_cycles_fast": fast_r.total_cycles,
            "instructions": fast_r.instructions,
            "digests_match": True,
        }
        base = baseline_workloads.get(name)
        if base and base.get("policy") == policy:
            row["baseline_seconds"] = base["host_seconds"]
            row["speedup_vs_baseline"] = round(
                base["host_seconds"] / max(fast_s, 1e-12), 3)
        rows[name] = row

    def _geomean(key: str) -> Optional[float]:
        values = [row[key] for row in rows.values() if key in row]
        if not values:
            return None
        return round(math.exp(sum(math.log(v) for v in values)
                              / len(values)), 3)

    summary: Dict[str, Any] = {
        "geomean_speedup_vs_interp": _geomean("speedup_vs_interp"),
    }
    vs_base = [row["speedup_vs_baseline"] for row in rows.values()
               if "speedup_vs_baseline" in row]
    if vs_base:
        summary["geomean_speedup_vs_baseline"] = _geomean(
            "speedup_vs_baseline")
        summary["min_speedup_vs_baseline"] = min(vs_base)

    return {
        "schema": CORE_BENCH_SCHEMA,
        "label": "core-speedup",
        "generated_by": "repro.telemetry.corebench",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "policy": policy,
        "repeats": repeats,
        "semantics": {
            "speedup_vs_interp": "fast vs interp wall clock, both engines "
                                 "measured at this commit (best-of-N "
                                 "process time)",
            "speedup_vs_baseline": "fast engine vs the committed "
                                   "BENCH_baseline.json host_seconds for "
                                   "the same workload and policy "
                                   "(pre-redesign core)",
        },
        "workloads": rows,
        "summary": summary,
    }


def check_artifact(payload: Dict[str, Any]) -> List[str]:
    """Schema-check a core-speedup artifact; returns problem strings."""
    problems = []
    if payload.get("schema") != CORE_BENCH_SCHEMA:
        problems.append(f"schema must be {CORE_BENCH_SCHEMA}, "
                        f"got {payload.get('schema')!r}")
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        problems.append("workloads must be a non-empty mapping")
        return problems
    required = ("interp_seconds", "fast_seconds", "speedup_vs_interp",
                "total_cycles_interp", "total_cycles_fast",
                "instructions", "digests_match")
    for name, row in workloads.items():
        for key in required:
            if key not in row:
                problems.append(f"{name}: missing {key}")
        if not row.get("digests_match"):
            problems.append(f"{name}: engine output digests diverged")
        for key in ("interp_seconds", "fast_seconds"):
            if key in row and not row[key] > 0:
                problems.append(f"{name}: {key} must be positive")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.corebench``: write the speedup bench."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.corebench",
        description="Benchmark interp vs fast engine wall clock and write "
                    "BENCH_core_speedup.json")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated registry workloads "
                             f"(default {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--policy", default="scc",
                        help="compaction policy to time under (default scc, "
                             "matching the hostprof baseline)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per engine per workload; best is kept "
                             "(default 3)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="BENCH_baseline.json to compute "
                             "speedup_vs_baseline against (default "
                             f"{DEFAULT_BASELINE}; missing file skips it)")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    payload = collect(names, policy=args.policy, repeats=args.repeats,
                      baseline_path=args.baseline)
    problems = check_artifact(payload)
    if problems:
        for problem in problems:
            print(f"artifact check: {problem}", file=sys.stderr)
        return 1
    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    for name, row in payload["workloads"].items():
        vs_base = row.get("speedup_vs_baseline")
        extra = f", {vs_base}x vs baseline" if vs_base is not None else ""
        print(f"{name}: interp {row['interp_seconds']:.3f}s, fast "
              f"{row['fast_seconds']:.3f}s ({row['speedup_vs_interp']}x"
              f"{extra})", file=sys.stderr)
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
