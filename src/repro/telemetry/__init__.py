"""Telemetry: per-cycle event tracing, counters, and host profiling.

The simulator's headline numbers (``KernelRunResult``) are end-of-run
aggregates; this package captures *where the cycles went* while they are
being spent, at three opt-in levels selected by
:attr:`repro.gpu.config.GpuConfig.telemetry`:

* ``"off"`` (default) — nothing is allocated and every instrumentation
  site reduces to one ``is not None`` check, so timing-sensitive runs
  are unaffected;
* ``"counters"`` — a hierarchical counter/timer registry accumulates
  per-EU issue/stall/compaction tallies, merged per-run and exposed via
  ``KernelRunResult.summary(telemetry=True)``;
* ``"trace"`` — additionally records per-cycle events (pipe occupancy
  spans, per-quad BCC/SCC execute/skip decisions, SCC swizzles, mask
  occupancy timelines, memory messages) exportable as a Chrome-trace
  JSON that Perfetto loads directly.

:mod:`repro.telemetry.hostprof` is the fourth surface: a sampling
profiler for the *simulator itself* (which subsystem and which opcode
burns host wall time), feeding the ``BENCH_*.json`` baselines.
"""

from .chrome_trace import (
    chrome_trace_dict,
    export_chrome_trace,
    validate_chrome_trace,
)
from .collector import TELEMETRY_LEVELS, EuTelemetry, TelemetryCollector, make_collector
from .counters import CounterRegistry
from .events import Event, TelemetryResult
from .hostprof import HostProfiler, profile_run, write_bench_json

__all__ = [
    "CounterRegistry",
    "Event",
    "EuTelemetry",
    "HostProfiler",
    "TELEMETRY_LEVELS",
    "TelemetryCollector",
    "TelemetryResult",
    "chrome_trace_dict",
    "export_chrome_trace",
    "make_collector",
    "profile_run",
    "validate_chrome_trace",
    "write_bench_json",
]
