"""Telemetry event records and the per-run result bundle.

An :class:`Event` is one observation on one *track* — a named timeline
such as ``"eu0/fpu"`` (EU 0's FPU pipe) or ``"gpu/mem"`` (the shared
memory hierarchy).  Timestamps are simulator cycles, which Chrome-trace
consumers render as microseconds; only relative placement matters.

Three phases mirror the Trace Event Format phases they export to:

* ``"X"`` — a *span*: something occupied the track for ``dur`` cycles
  (a pipe executing an instruction, a memory message in flight);
* ``"i"`` — an *instant*: a point decision (a quad skipped by BCC, a
  swizzle performed by SCC, a stall, a workgroup dispatch);
* ``"C"`` — a *counter* sample: a value as of ``ts`` (active-lane
  population after each mask-stack change).

:class:`TelemetryResult` is the picklable end-of-run bundle attached to
:class:`~repro.gpu.results.KernelRunResult` — it crosses process-pool
boundaries and lives in the on-disk result cache, so it holds only plain
data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Event phases, matching the Trace Event Format ``ph`` values used.
PHASE_SPAN = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"

_PHASES = (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER)


@dataclass(frozen=True)
class Event:
    """One telemetry observation on one track.

    Attributes:
        ph: phase — ``"X"`` span, ``"i"`` instant, ``"C"`` counter.
        track: timeline name, ``"<process>/<lane>"`` (e.g. ``"eu2/fpu"``).
        name: event name (opcode, ``"quad_skip"``, ``"active_lanes"``...).
        ts: start cycle.
        dur: duration in cycles (spans only; 0 otherwise).
        args: optional payload rendered into the trace's ``args`` field.
    """

    ph: str
    track: str
    name: str
    ts: int
    dur: int = 0
    args: Optional[Dict[str, object]] = None

    def shifted(self, offset: int) -> "Event":
        """Copy of this event displaced *offset* cycles later."""
        if offset == 0:
            return self
        return Event(self.ph, self.track, self.name, self.ts + offset,
                     self.dur, self.args)


@dataclass
class TelemetryResult:
    """Everything telemetry captured during one kernel launch (picklable).

    Attributes:
        level: the :class:`~repro.gpu.config.GpuConfig` telemetry level
            that produced this bundle (``"counters"`` or ``"trace"``).
        counters: merged hierarchical counters — per-EU registries summed
            into run totals under dotted names (``"issue.alu"``,
            ``"stall.pipe"``, ``"compaction.quads_skipped"``...).
        events: per-cycle events in non-decreasing ``ts`` order (empty at
            the ``"counters"`` level).
        total_cycles: cycle span covered by this bundle (used to offset
            events when multi-launch workloads are merged).
    """

    level: str
    counters: Dict[str, float] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    total_cycles: int = 0

    @staticmethod
    def merge(parts: Sequence["TelemetryResult"]) -> "TelemetryResult":
        """Concatenate multi-launch telemetry into one timeline.

        Counters are summed; each launch's events are shifted by the
        cumulative cycle count of the launches before it, so the merged
        timeline stays monotonic per track — exactly how the workload's
        launches follow each other on the simulated GPU.
        """
        if not parts:
            raise ValueError("TelemetryResult.merge needs at least one part")
        merged = TelemetryResult(level=parts[0].level)
        offset = 0
        for part in parts:
            if part.level != merged.level:
                raise ValueError(
                    f"cannot merge telemetry levels {merged.level!r} and "
                    f"{part.level!r}")
            for name, value in part.counters.items():
                merged.counters[name] = merged.counters.get(name, 0.0) + value
            merged.events.extend(e.shifted(offset) for e in part.events)
            offset += part.total_cycles
        merged.total_cycles = offset
        return merged
