"""The run-level telemetry collector and its per-EU views.

One :class:`TelemetryCollector` exists per simulated kernel launch when
``GpuConfig.telemetry`` is not ``"off"``; the simulator hands each
:class:`~repro.eu.eu.ExecutionUnit` an :class:`EuTelemetry` view bound
to its EU id, and run-level components (dispatcher, memory hierarchy)
emit directly on the collector.  When telemetry is off, no collector is
ever constructed and every instrumentation site in the timing model is a
single ``if self.telemetry is not None`` guard — the zero-overhead
contract the overhead test enforces.

Event semantics are deliberately close to the hardware questions the
paper asks: which quads did BCC suppress, which lanes did SCC swizzle,
how full is the execution mask, which pipe was busy when.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.bcc import bcc_schedule
from ..core.policy import CompactionPolicy
from ..core.quads import popcount
from ..core.scc import scc_schedule
from .counters import CounterRegistry
from .events import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    Event,
    TelemetryResult,
)

#: Valid values of ``GpuConfig.telemetry``.
TELEMETRY_LEVELS = ("off", "counters", "trace")


def make_collector(config) -> Optional["TelemetryCollector"]:
    """Build the collector a :class:`GpuConfig` asks for (None if off)."""
    level = getattr(config, "telemetry", "off")
    if level == "off":
        return None
    if level not in TELEMETRY_LEVELS:
        raise ValueError(
            f"unknown telemetry level {level!r}; expected one of "
            f"{', '.join(TELEMETRY_LEVELS)}")
    return TelemetryCollector(level, config.num_eus)


class TelemetryCollector:
    """Accumulates counters and (at the trace level) per-cycle events."""

    def __init__(self, level: str, num_eus: int) -> None:
        if level not in TELEMETRY_LEVELS or level == "off":
            raise ValueError(f"collector needs an enabled level, got {level!r}")
        self.level = level
        self.tracing = level == "trace"
        self.counters = CounterRegistry()  # run-level (dispatch, memory)
        self.events: List[Event] = []
        self._eus = [EuTelemetry(self, eu_id) for eu_id in range(num_eus)]

    def eu(self, eu_id: int) -> "EuTelemetry":
        """The per-EU view handed to ``ExecutionUnit``."""
        return self._eus[eu_id]

    # -- run-level emission (dispatch, memory hierarchy) -------------------

    def instant(self, track: str, name: str, ts: int,
                args: Optional[Dict[str, object]] = None) -> None:
        if self.tracing:
            self.events.append(Event(PHASE_INSTANT, track, name, ts, 0, args))

    def span(self, track: str, name: str, ts: int, dur: int,
             args: Optional[Dict[str, object]] = None) -> None:
        if self.tracing:
            self.events.append(Event(PHASE_SPAN, track, name, ts,
                                     max(dur, 1), args))

    def sample(self, track: str, name: str, ts: int, value: float) -> None:
        if self.tracing:
            self.events.append(Event(PHASE_COUNTER, track, name, ts, 0,
                                     {"value": value}))

    # -- finalization ------------------------------------------------------

    def result(self, total_cycles: int) -> TelemetryResult:
        """Freeze into the picklable per-run bundle.

        Per-EU counters are merged into run totals (the hierarchical
        per-EU -> per-run roll-up); events are sorted by timestamp so
        every track's timeline is monotonic.
        """
        merged = CounterRegistry.merged(
            [self.counters] + [eu.counters for eu in self._eus])
        events = sorted(self.events, key=lambda e: (e.ts, e.track, e.name))
        return TelemetryResult(
            level=self.level,
            counters=merged.as_dict(),
            events=events,
            total_cycles=total_cycles,
        )


class EuTelemetry:
    """Per-EU emission surface, bound to the EU's tracks.

    Every method is called from the EU's issue loop *only when telemetry
    is enabled* — the EU holds ``None`` otherwise — so these methods can
    afford dictionary work the disabled path must never pay.
    """

    __slots__ = ("collector", "eu_id", "counters", "tracing",
                 "_fpu", "_em", "_send", "_quads", "_front", "_occ")

    def __init__(self, collector: TelemetryCollector, eu_id: int) -> None:
        self.collector = collector
        self.eu_id = eu_id
        self.counters = CounterRegistry()
        self.tracing = collector.tracing
        base = f"eu{eu_id}"
        self._fpu = f"{base}/fpu"
        self._em = f"{base}/em"
        self._send = f"{base}/send"
        self._quads = f"{base}/quads"
        self._front = f"{base}/frontend"
        self._occ = f"{base}/occupancy"

    def _pipe_track(self, pipe_name: str) -> str:
        if pipe_name == "fpu":
            return self._fpu
        if pipe_name == "em":
            return self._em
        return self._send

    # -- issue events ------------------------------------------------------

    def alu_issue(self, now: int, inst, exec_mask: int, cycles: int,
                  pipe_name: str, policy: CompactionPolicy) -> None:
        """One ALU instruction entered a pipe for *cycles* quad-cycles."""
        counters = self.counters
        counters.incr("issue.alu")
        counters.incr("issue.total")
        counters.incr(f"opcode.{inst.opcode.name.lower()}")
        active = popcount(exec_mask)
        counters.incr("lanes.active", active)
        counters.incr("lanes.issued", inst.width)
        counters.incr("cycles.alu", cycles)
        if self.tracing:
            events = self.collector.events
            events.append(Event(
                PHASE_SPAN, self._pipe_track(pipe_name),
                inst.opcode.name.lower(), now, max(cycles, 1),
                {"mask": f"0x{exec_mask:X}", "width": inst.width,
                 "active": active, "policy": policy.value}))
            events.append(Event(PHASE_COUNTER, self._occ, "active_lanes",
                                now, 0, {"value": active}))
        self._quad_events(now, inst, exec_mask, policy)

    def _quad_events(self, now: int, inst, exec_mask: int,
                     policy: CompactionPolicy) -> None:
        """Per-quad compaction decisions — the paper's per-cycle story.

        BCC: one ``quad_exec``/``quad_skip`` instant per aligned quad.
        SCC: one ``quad_exec`` per *packed* execution cycle (listing the
        global lanes it covers), a ``swizzle`` instant per lane moved out
        of its home position, and ``quad_skip`` for the quad slots the
        packing freed.  Other policies make no per-quad decision.

        The ``compaction.*`` counters accumulate at both enabled levels;
        the per-quad instants only at the trace level.
        """
        tracing = self.tracing
        events = self.collector.events
        counters = self.counters
        if policy is CompactionPolicy.BCC:
            schedule = bcc_schedule(exec_mask, inst.width)
            counters.incr("compaction.quads_executed", len(schedule.ops))
            counters.incr("compaction.quads_skipped", len(schedule.suppressed))
            if not tracing:
                return
            for op in schedule.ops:
                events.append(Event(
                    PHASE_INSTANT, self._quads, "quad_exec", now, 0,
                    {"quad": op.quad, "lane_enable": f"0x{op.lane_enable:X}",
                     "policy": "bcc"}))
            for quad in schedule.suppressed:
                events.append(Event(
                    PHASE_INSTANT, self._quads, "quad_skip", now, 0,
                    {"quad": quad, "policy": "bcc"}))
        elif policy is CompactionPolicy.SCC:
            schedule = scc_schedule(exec_mask, inst.width)
            skipped = inst.width // 4 - len(schedule.cycles)
            counters.incr("compaction.quads_executed", len(schedule.cycles))
            counters.incr("compaction.quads_skipped", max(skipped, 0))
            counters.incr("compaction.swizzles", schedule.swizzle_count)
            if not tracing:
                return
            for index, cycle in enumerate(schedule.cycles):
                lanes = [slot.global_lane for slot in cycle]
                events.append(Event(
                    PHASE_INSTANT, self._quads, "quad_exec", now, 0,
                    {"quad": index, "lanes": lanes, "policy": "scc",
                     "swizzles": sum(1 for s in cycle if s.swizzled)}))
                for slot in cycle:
                    if slot.swizzled:
                        events.append(Event(
                            PHASE_INSTANT, self._quads, "swizzle", now, 0,
                            {"out_lane": slot.out_lane, "quad": slot.quad,
                             "src_lane": slot.src_lane}))
            for index in range(len(schedule.cycles), inst.width // 4):
                events.append(Event(
                    PHASE_INSTANT, self._quads, "quad_skip", now, 0,
                    {"quad": index, "policy": "scc"}))

    def mem_issue(self, now: int, inst, exec_mask: int,
                  occupancy: int) -> None:
        """One memory message went down the SEND pipe."""
        counters = self.counters
        counters.incr("issue.mem")
        counters.incr("issue.total")
        counters.incr(f"opcode.{inst.opcode.name.lower()}")
        counters.incr("lanes.active", popcount(exec_mask))
        counters.incr("lanes.issued", inst.width)
        if self.tracing:
            self.collector.events.append(Event(
                PHASE_SPAN, self._send, inst.opcode.name.lower(), now,
                max(occupancy, 1),
                {"mask": f"0x{exec_mask:X}", "width": inst.width}))

    def ctrl_issue(self, now: int, inst, mask_after: int, width: int) -> None:
        """A control instruction executed in the front end.

        Emits the post-instruction mask population — the mask-occupancy
        timeline that shows divergence evolving through IF/ELSE/WHILE.
        """
        counters = self.counters
        counters.incr("issue.ctrl")
        counters.incr("issue.total")
        counters.incr(f"opcode.{inst.opcode.name.lower()}")
        if self.tracing:
            events = self.collector.events
            events.append(Event(
                PHASE_INSTANT, self._front, inst.opcode.name.lower(), now))
            events.append(Event(
                PHASE_COUNTER, self._occ, "active_lanes", now, 0,
                {"value": popcount(mask_after)}))

    def barrier(self, now: int) -> None:
        self.counters.incr("issue.barrier")
        self.counters.incr("issue.total")
        if self.tracing:
            self.collector.events.append(Event(
                PHASE_INSTANT, self._front, "barrier", now))

    def stall(self, now: int, slot: int, reason: str) -> None:
        """A ready thread could not issue this arbitration pass."""
        self.counters.incr(f"stall.{reason}")
        if self.tracing:
            self.collector.events.append(Event(
                PHASE_INSTANT, self._front, f"stall_{reason}", now, 0,
                {"slot": slot}))

    def thread_retired(self, now: int) -> None:
        """The thread's EOT issued — an instruction like any other, so
        the issue counters keep ``issue.total == instructions``."""
        counters = self.counters
        counters.incr("issue.ctrl")
        counters.incr("issue.total")
        counters.incr("opcode.eot")
        counters.incr("threads.retired")
        if self.tracing:
            self.collector.events.append(Event(
                PHASE_INSTANT, self._front, "eot", now))
