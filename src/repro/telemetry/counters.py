"""Hierarchical counter/timer registry.

Counters live in flat dicts under dotted names; hierarchy is a naming
convention (``"issue.alu"``, ``"stall.scoreboard"``,
``"compaction.swizzles"``) so merging per-EU registries into a per-run
view is a plain sum — no tree bookkeeping on the hot path.  Timers
record both accumulated seconds (``<name>.seconds``) and call counts
(``<name>.calls``) so rates can be derived after merging.

The registry is deliberately tiny: ``incr`` is the only operation the
simulator's issue loop performs, and only when telemetry is enabled at
all — the disabled path never constructs a registry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable


class CounterRegistry:
    """A flat bag of dotted-name counters with merge support."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        values = self._values
        values[name] = values.get(name, 0.0) + amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    @contextmanager
    def timer(self, name: str):
        """Time a block: accumulates ``<name>.seconds`` and ``<name>.calls``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.incr(f"{name}.seconds", time.perf_counter() - start)
            self.incr(f"{name}.calls")

    def merge(self, other: "CounterRegistry", prefix: str = "") -> None:
        """Sum *other*'s counters into this registry.

        With *prefix*, names arrive as ``"<prefix>.<name>"`` — used to
        keep a per-EU breakdown next to the run totals when wanted.
        """
        values = self._values
        for name, value in other._values.items():
            key = f"{prefix}.{name}" if prefix else name
            values[key] = values.get(key, 0.0) + value

    @staticmethod
    def merged(parts: Iterable["CounterRegistry"]) -> "CounterRegistry":
        """New registry holding the sum of *parts* (per-EU -> per-run)."""
        out = CounterRegistry()
        for part in parts:
            out.merge(part)
        return out

    def as_dict(self) -> Dict[str, float]:
        """Counters as a sorted plain dict (picklable, JSON-friendly)."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterRegistry({self._values!r})"
