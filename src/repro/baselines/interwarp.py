"""Idealized inter-warp compaction baseline (TBC/LWM class).

The paper positions BCC/SCC against thread block compaction [11], large
warps [25], and CAPRI [30]: techniques that *merge active threads across
warps* of a thread block at divergence points.  This module implements
an analytic model of that class so the paper's comparison claims can be
quantified on the same mask streams the intra-warp analysis uses:

* **Lane-preserving compaction** (what TBC-class hardware actually
  does): a compacted warp can take at most one thread per *home lane*
  from the group, because the register file is banked by lane.  The
  compacted warp count for a group of masks is therefore the maximum,
  over lane positions, of how many warps have that lane active.
* **Ideal compaction** (a lane-oblivious upper bound): simply
  ``ceil(total_active / warp_width)`` warps.
* **Memory-divergence side effect**: merging threads from *k* source
  warps into one issued warp makes that warp's previously-coalesced
  memory instruction touch ~*k* distinct line groups (paper Section 1:
  "combining warps can increase memory divergence ... which can lead to
  performance loss").  BCC/SCC never move threads between warps, so
  their line counts are unchanged by construction.

These are deliberately *optimistic* for the inter-warp side (no
synchronization stalls, perfect candidate availability), which makes the
reproduction of the paper's claim — intra-warp compaction delivers the
bulk of the benefit without the memory-divergence and register-file
costs — conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..core.policy import CompactionPolicy, execution_cycles
from ..core.quads import QUAD_WIDTH, clamp_mask, popcount, validate_width


def lane_occupancy(masks: Sequence[int], width: int) -> List[int]:
    """Per-lane count of warps (in the group) with that lane active."""
    validate_width(width)
    counts = [0] * width
    for mask in masks:
        mask = clamp_mask(mask, width)
        for lane in range(width):
            if (mask >> lane) & 1:
                counts[lane] += 1
    return counts


def tbc_compacted_warps(masks: Sequence[int], width: int) -> int:
    """Warps issued after lane-preserving inter-warp compaction.

    Zero-active groups still issue nothing.  A group where some lane is
    active in every warp cannot be compacted at all (the paper's
    motivating observation for SCC: repeating patterns across warps,
    e.g. 0xAAAA everywhere, defeat TBC because lane positions are
    preserved).
    """
    occupancy = lane_occupancy(masks, width)
    return max(occupancy) if occupancy else 0


def ideal_compacted_warps(masks: Sequence[int], width: int) -> int:
    """Lane-oblivious lower bound on issued warps."""
    total = sum(popcount(clamp_mask(m, width)) for m in masks)
    return -(-total // width)


def tbc_schedule(masks: Sequence[int], width: int) -> List[Tuple[int, int]]:
    """Compacted warps TBC would issue for the group.

    Threads are assigned greedily per home lane in warp order (TBC's
    priority encoder).  Returns, per issued warp, ``(mask,
    source_warp_count)`` — the resulting execution mask and how many
    distinct source warps contributed threads (the memory-divergence
    mixing degree).
    """
    validate_width(width)
    per_lane: List[List[int]] = [[] for _ in range(width)]
    for warp_index, mask in enumerate(masks):
        mask = clamp_mask(mask, width)
        for lane in range(width):
            if (mask >> lane) & 1:
                per_lane[lane].append(warp_index)
    issued = max((len(queue) for queue in per_lane), default=0)
    schedule = []
    for slot in range(issued):
        mask = 0
        sources = set()
        for lane, queue in enumerate(per_lane):
            if len(queue) > slot:
                mask |= 1 << lane
                sources.add(queue[slot])
        schedule.append((mask, len(sources)))
    return schedule


def tbc_cycles(masks: Sequence[int], width: int, dtype_factor: int = 1) -> int:
    """Execution cycles for the group under idealized TBC.

    Each compacted warp executes on the same IVB-optimized baseline
    pipeline the intra-warp techniques start from (inter-warp proposals
    do not include intra-warp cycle compression).
    """
    return sum(
        execution_cycles(mask, width, CompactionPolicy.IVB, dtype_factor,
                         min_cycles=1)
        for mask, _sources in tbc_schedule(masks, width)
    )


def intra_warp_cycles(masks: Sequence[int], width: int,
                      policy: CompactionPolicy = CompactionPolicy.SCC,
                      dtype_factor: int = 1) -> int:
    """Execution cycles for the group under intra-warp compaction."""
    return sum(
        execution_cycles(m, width, policy, dtype_factor, min_cycles=1)
        for m in masks
    )


def tbc_memory_lines(masks: Sequence[int], width: int,
                     lines_per_warp: int = 1) -> int:
    """Distinct line requests after compaction, assuming each source
    warp's accesses were coalesced into ``lines_per_warp`` lines.

    A compacted warp that draws threads from *k* source warps issues
    requests to all *k* warps' line groups.
    """
    return sum(
        sources * lines_per_warp
        for _mask, sources in tbc_schedule(masks, width)
    )


def baseline_memory_lines(masks: Sequence[int], width: int,
                          lines_per_warp: int = 1) -> int:
    """Line requests without inter-warp mixing (one group per warp)."""
    return sum(
        lines_per_warp for m in masks if clamp_mask(m, width) != 0
    )


@dataclass
class InterWarpComparison:
    """Aggregate comparison over a stream of warp groups."""

    groups: int = 0
    baseline_cycles: int = 0  # IVB, no compaction
    scc_cycles: int = 0
    bcc_cycles: int = 0
    tbc_cycles: int = 0
    ideal_cycles: int = 0
    baseline_lines: int = 0
    tbc_lines: int = 0

    def record_group(self, masks: Sequence[int], width: int) -> None:
        """Fold one warp group (same PC across the block) into the totals."""
        self.groups += 1
        self.baseline_cycles += intra_warp_cycles(masks, width,
                                                  CompactionPolicy.IVB)
        self.bcc_cycles += intra_warp_cycles(masks, width, CompactionPolicy.BCC)
        self.scc_cycles += intra_warp_cycles(masks, width, CompactionPolicy.SCC)
        self.tbc_cycles += tbc_cycles(masks, width)
        per_warp = max(1, width // QUAD_WIDTH)
        self.ideal_cycles += ideal_compacted_warps(masks, width) * per_warp
        self.baseline_lines += baseline_memory_lines(masks, width)
        self.tbc_lines += tbc_memory_lines(masks, width)

    def reduction_pct(self, cycles: int) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * (self.baseline_cycles - cycles) / self.baseline_cycles

    @property
    def scc_reduction_pct(self) -> float:
        return self.reduction_pct(self.scc_cycles)

    @property
    def bcc_reduction_pct(self) -> float:
        return self.reduction_pct(self.bcc_cycles)

    @property
    def tbc_reduction_pct(self) -> float:
        return self.reduction_pct(self.tbc_cycles)

    @property
    def ideal_reduction_pct(self) -> float:
        return self.reduction_pct(self.ideal_cycles)

    @property
    def memory_divergence_increase_pct(self) -> float:
        """Extra line requests TBC's thread mixing generates."""
        if self.baseline_lines == 0:
            return 0.0
        return 100.0 * (self.tbc_lines - self.baseline_lines) / self.baseline_lines

    @property
    def scc_benefit_share_of_tbc(self) -> float:
        """Fraction of TBC's cycle benefit that SCC alone captures."""
        if self.tbc_reduction_pct <= 0:
            return 1.0
        return self.scc_reduction_pct / self.tbc_reduction_pct


def compare_on_groups(groups: Iterable[Tuple[Sequence[int], int]]) -> InterWarpComparison:
    """Run the comparison over an iterable of ``(masks, width)`` groups."""
    comparison = InterWarpComparison()
    for masks, width in groups:
        comparison.record_group(masks, width)
    return comparison


def groups_from_trace(events, group_size: int = 4):
    """Batch a flat trace into warp groups of *group_size* same-width events.

    This emulates a thread block whose warps execute the same instruction
    stream — the situation TBC's block-wide reconvergence stack creates.
    Leftover events that cannot fill a group form a smaller final group.
    """
    if group_size < 1:
        raise ValueError("group_size must be positive")
    pending = {}
    for event in events:
        key = (event.width, event.dtype_factor)
        bucket = pending.setdefault(key, [])
        bucket.append(event.mask)
        if len(bucket) == group_size:
            yield bucket, event.width
            pending[key] = []
    for (width, _factor), bucket in pending.items():
        if bucket:
            yield bucket, width
