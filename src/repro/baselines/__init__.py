"""Baseline divergence techniques the paper compares against."""

from .interwarp import (
    InterWarpComparison,
    baseline_memory_lines,
    compare_on_groups,
    groups_from_trace,
    ideal_compacted_warps,
    intra_warp_cycles,
    lane_occupancy,
    tbc_compacted_warps,
    tbc_cycles,
    tbc_memory_lines,
    tbc_schedule,
)

__all__ = [
    "InterWarpComparison",
    "baseline_memory_lines",
    "compare_on_groups",
    "groups_from_trace",
    "ideal_compacted_warps",
    "intra_warp_cycles",
    "lane_occupancy",
    "tbc_compacted_warps",
    "tbc_cycles",
    "tbc_memory_lines",
    "tbc_schedule",
]
